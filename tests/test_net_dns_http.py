"""Tests for the DNS and HTTP application-layer codecs."""

import pytest

from repro.net.dns import (
    DNSAnswer,
    DNSMessage,
    DNSQuestion,
    decode_name,
    encode_name,
)
from repro.net.http import HTTPRequest, HTTPResponse


class TestDNSNames:
    def test_roundtrip(self):
        raw = encode_name("sensor.iot.local")
        name, offset = decode_name(raw, 0)
        assert name == "sensor.iot.local"
        assert offset == len(raw)

    def test_trailing_dot_normalised(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_rejects_long_label(self):
        with pytest.raises(ValueError):
            encode_name("x" * 64 + ".com")

    def test_compression_pointer(self):
        # Name at offset 0, then a pointer to it at the end.
        raw = encode_name("host.example") + b"\xc0\x00"
        name, offset = decode_name(raw, len(raw) - 2)
        assert name == "host.example"
        assert offset == len(raw)

    def test_compression_loop_detected(self):
        raw = b"\xc0\x00"  # pointer to itself
        with pytest.raises(ValueError, match="loop"):
            decode_name(raw, 0)

    def test_truncated(self):
        with pytest.raises(ValueError):
            decode_name(b"\x05ab", 0)


class TestDNSMessage:
    def test_query_roundtrip(self):
        message = DNSMessage(transaction_id=77,
                             questions=[DNSQuestion("example.com")])
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert parsed.transaction_id == 77
        assert not parsed.is_response
        assert parsed.questions[0].name == "example.com"

    def test_response_with_answer_roundtrip(self):
        message = DNSMessage(
            transaction_id=5,
            is_response=True,
            questions=[DNSQuestion("srv.local")],
            answers=[DNSAnswer("srv.local", "10.1.2.3", ttl=60)],
        )
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert parsed.is_response
        assert parsed.answers[0].address == "10.1.2.3"
        assert parsed.answers[0].ttl == 60

    def test_too_short(self):
        with pytest.raises(ValueError):
            DNSMessage.from_bytes(b"\x00" * 11)


class TestHTTP:
    def test_request_roundtrip(self):
        request = HTTPRequest(method="POST", path="/login",
                              headers={"Host": "example"}, body=b"user=admin")
        parsed = HTTPRequest.from_bytes(request.to_bytes())
        assert parsed.method == "POST"
        assert parsed.path == "/login"
        assert parsed.headers["Host"] == "example"
        assert parsed.headers["Content-Length"] == "10"
        assert parsed.body == b"user=admin"

    def test_response_roundtrip(self):
        response = HTTPResponse(status=404, reason="Not Found", body=b"nope")
        parsed = HTTPResponse.from_bytes(response.to_bytes())
        assert parsed.status == 404
        assert parsed.reason == "Not Found"
        assert parsed.body == b"nope"

    def test_malformed_request_line(self):
        with pytest.raises(ValueError):
            HTTPRequest.from_bytes(b"NOT A REQUEST\r\n\r\n")

    def test_malformed_status_line(self):
        with pytest.raises(ValueError):
            HTTPResponse.from_bytes(b"totally wrong\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            HTTPRequest.from_bytes(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")
