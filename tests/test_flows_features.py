"""Tests for the CICFlowMeter-style and UNSW-style feature exporters."""

import math

import pytest

from repro.flows.assembler import FlowAssembler
from repro.flows.cicflow import CICFLOW_FEATURE_NAMES, cicflow_features
from repro.flows.netflow import NETFLOW_FEATURE_NAMES, netflow_features
from repro.net.tcp import TCPFlags

from tests.conftest import make_tcp_packet, make_udp_packet, simple_http_flow_packets


@pytest.fixture
def http_flow():
    return FlowAssembler().assemble(simple_http_flow_packets())[0]


@pytest.fixture
def udp_flow():
    packets = [make_udp_packet(float(i) * 0.5, payload=b"z" * 100)
               for i in range(4)]
    return FlowAssembler().assemble(packets)[0]


class TestCICFlowFeatures:
    def test_complete_schema(self, http_flow):
        features = cicflow_features(http_flow)
        assert set(features) == set(CICFLOW_FEATURE_NAMES)

    def test_all_finite(self, http_flow, udp_flow):
        for flow in (http_flow, udp_flow):
            for name, value in cicflow_features(flow).items():
                assert math.isfinite(value), f"{name} is {value}"

    def test_direction_counts(self, http_flow):
        features = cicflow_features(http_flow)
        assert features["total_fwd_packets"] == 3.0
        assert features["total_bwd_packets"] == 2.0
        assert features["total_length_bwd_packets"] == 512.0

    def test_flag_counts(self, http_flow):
        features = cicflow_features(http_flow)
        assert features["syn_flag_count"] == 2.0  # SYN + SYN/ACK
        assert features["fin_flag_count"] == 1.0
        assert features["psh_flag_count"] == 1.0

    def test_protocol_one_hot(self, http_flow, udp_flow):
        assert cicflow_features(http_flow)["protocol_tcp"] == 1.0
        assert cicflow_features(udp_flow)["protocol_udp"] == 1.0
        assert cicflow_features(udp_flow)["protocol_tcp"] == 0.0

    def test_destination_port(self, http_flow):
        assert cicflow_features(http_flow)["destination_port"] == 80.0

    def test_zero_duration_flow_rates_are_zero(self):
        flow = FlowAssembler().assemble([make_udp_packet(1.0)])[0]
        features = cicflow_features(flow)
        assert features["flow_bytes_per_s"] == 0.0
        assert features["flow_packets_per_s"] == 0.0

    def test_rates_positive_for_active_flow(self, udp_flow):
        features = cicflow_features(udp_flow)
        assert features["flow_packets_per_s"] > 0
        assert features["flow_bytes_per_s"] > 0

    def test_down_up_ratio(self, http_flow):
        features = cicflow_features(http_flow)
        assert features["down_up_ratio"] == pytest.approx(2.0 / 3.0)


class TestNetflowFeatures:
    def test_complete_schema(self, http_flow):
        features = netflow_features(http_flow)
        assert set(features) == set(NETFLOW_FEATURE_NAMES)

    def test_all_finite(self, http_flow, udp_flow):
        for flow in (http_flow, udp_flow):
            for name, value in netflow_features(flow).items():
                assert math.isfinite(value), f"{name} is {value}"

    def test_state_one_hot_fin(self, http_flow):
        features = netflow_features(http_flow)
        assert features["state_fin"] == 1.0
        assert features["state_con"] == 0.0

    def test_state_rst(self):
        packets = [
            make_tcp_packet(0.0, flags=TCPFlags.SYN),
            make_tcp_packet(0.2, flags=TCPFlags.RST),
        ]
        flow = FlowAssembler().assemble(packets)[0]
        features = netflow_features(flow)
        assert features["state_rst"] == 1.0
        assert features["state_fin"] == 0.0

    def test_directional_volume(self, http_flow):
        features = netflow_features(http_flow)
        assert features["spkts"] == 3.0
        assert features["dpkts"] == 2.0
        assert features["sbytes"] > 0
        assert features["dbytes"] > features["sbytes"]  # 512B response

    def test_load_is_bits_per_second(self, udp_flow):
        features = netflow_features(udp_flow)
        expected = udp_flow.forward.bytes * 8.0 / udp_flow.duration
        assert features["sload"] == pytest.approx(expected)

    def test_ports(self, http_flow):
        features = netflow_features(http_flow)
        assert features["sport"] == 1234.0
        assert features["dsport"] == 80.0
