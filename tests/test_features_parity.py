"""Scalar ↔ vector NetStat parity: bit-for-bit, no exceptions.

The vectorized AfterImage engine replaces the per-packet hot path under
every Kitsune/HELAD cell, so any deviation — a reordered float op, a
different pow implementation, a divergent prune — would silently shift
Table IV. These tests enforce the parity contract:

* randomized packet streams (repeated timestamps, ARP and non-IP
  frames, self-conversations, prune-triggering key churn) must produce
  *identical* 100-dim vectors from the scalar reference and both
  vector kernels;
* a golden fixture pins the exact feature values (and therefore the
  feature ordering) of a deterministic stream, so a layout change in
  any engine shows up as a diff against a committed file.

Regenerate the golden fixture after an intentional semantic change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src pytest tests/test_features_parity.py
"""

import os
import random
from pathlib import Path

import numpy as np
import pytest

from repro.features import _native
from repro.features.netstat import NetStat
from repro.net.arp import ARPHeader
from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.net.packet import Packet

from tests.conftest import make_tcp_packet, make_udp_packet

GOLDEN_PATH = Path(__file__).parent / "golden" / "netstat_features.npz"

NATIVE_AVAILABLE = _native.load_kernel() is not None
VECTOR_ENGINES = ["vector-numpy"] + (
    ["vector-native", "vector-native-mt"] if NATIVE_AVAILABLE else []
)


def make_arp_packet(ts: float, src: str, dst: str) -> Packet:
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
        arp=ARPHeader(sender_ip=src, target_ip=dst),
    )


def make_non_ip_packet(ts: float, payload_len: int) -> Packet:
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(ethertype=0x86DD),
        payload=b"v" * payload_len,
    )


def random_stream(seed: int, count: int = 1200) -> list[Packet]:
    """An adversarial packet mix for parity testing."""
    rng = random.Random(seed)
    ips = [f"10.1.{i // 6}.{i % 6}" for i in range(30)]
    packets = []
    ts = 0.0
    for _ in range(count):
        if rng.random() < 0.7:
            # Repeated timestamps (dt == 0) are common in captures and
            # exercise the no-decay branch.
            ts += rng.choice([0.0, 0.0, 0.001, 0.05, 2.0, 45.0])
        src, dst = rng.choice(ips), rng.choice(ips)
        if rng.random() < 0.04:
            dst = src  # self-conversation: both channel keys alias
        sport = rng.choice([80, 443, 1234, 5353])
        dport = rng.choice([80, 53, 8080, sport])
        draw = rng.random()
        if draw < 0.05:
            packets.append(make_arp_packet(ts, src, dst))
        elif draw < 0.08:
            packets.append(make_non_ip_packet(ts, rng.randrange(0, 64)))
        elif draw < 0.55:
            packets.append(make_tcp_packet(
                ts, src=src, dst=dst, sport=sport, dport=dport,
                payload=b"p" * rng.randrange(0, 300),
            ))
        else:
            packets.append(make_udp_packet(
                ts, src=src, dst=dst, sport=sport, dport=dport,
                payload=b"q" * rng.randrange(0, 150),
            ))
    return packets


class TestRandomizedParity:
    @pytest.mark.parametrize("engine", VECTOR_ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_for_bit(self, seed, engine):
        packets = random_stream(seed)
        scalar = NetStat(engine="scalar")
        vector = NetStat(engine=engine)
        for index, packet in enumerate(packets):
            expected = scalar.update(packet)
            got = vector.update(packet)
            assert np.array_equal(expected, got), (
                f"{engine}: first divergence at packet {index}, "
                f"features {np.nonzero(expected != got)[0][:5]}"
            )

    @pytest.mark.parametrize("engine", VECTOR_ENGINES)
    @pytest.mark.parametrize("max_streams", [25, 60])
    def test_bit_for_bit_under_prune_churn(self, engine, max_streams):
        """Key churn past max_streams triggers mid-stream prunes; the
        eviction sets — and therefore every post-prune recreated
        stream — must line up exactly."""
        packets = random_stream(3, count=2000)
        scalar = NetStat(engine="scalar", max_streams=max_streams)
        vector = NetStat(engine=engine, max_streams=max_streams)
        matrix_s = scalar.extract_all(packets)
        matrix_v = vector.extract_all(packets)
        assert np.array_equal(matrix_s, matrix_v)
        assert len(scalar._db) == len(vector._db)

    @pytest.mark.parametrize("engine", VECTOR_ENGINES)
    def test_extract_all_matches_update_loop(self, engine):
        packets = random_stream(4, count=300)
        one = NetStat(engine=engine)
        rows = np.vstack([one.update(packet) for packet in packets])
        other = NetStat(engine=engine)
        assert np.array_equal(rows, other.extract_all(packets))

    def test_reduced_decay_set_parity(self):
        packets = random_stream(5, count=400)
        scalar_matrix = NetStat(
            decays=(1.0, 0.1), engine="scalar"
        ).extract_all(packets)
        for engine in VECTOR_ENGINES:
            vector = NetStat(decays=(1.0, 0.1), engine=engine)
            assert np.array_equal(scalar_matrix, vector.extract_all(packets))
            assert vector.feature_count == 40


def golden_stream() -> list[Packet]:
    """Deterministic mixed stream behind the golden fixture."""
    packets = []
    packets.extend(
        make_tcp_packet(i * 0.25, src="10.0.0.1", dst="10.0.0.2",
                        payload=b"a" * (40 + 13 * (i % 7)))
        for i in range(20)
    )
    packets.extend(
        make_udp_packet(3.0 + i * 0.5, src="10.0.0.2", dst="10.0.0.1",
                        sport=53, dport=5353, payload=b"b" * (20 + i))
        for i in range(10)
    )
    packets.append(make_arp_packet(9.0, "10.0.0.3", "10.0.0.1"))
    packets.append(make_non_ip_packet(9.5, 32))
    packets.extend(
        make_tcp_packet(10.0 + i * 0.1, src="10.0.0.3", dst="10.0.0.3",
                        sport=7777, dport=7777)
        for i in range(5)
    )
    return packets


class TestGoldenFeatureVectors:
    """Pins NetStat's exact output (values *and* column ordering)."""

    def _current(self, engine: str) -> np.ndarray:
        return NetStat(engine=engine).extract_all(golden_stream())

    def test_golden_matrix(self):
        matrix = self._current("scalar")
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            np.savez_compressed(GOLDEN_PATH, features=matrix)
            pytest.skip("golden fixture regenerated")
        assert GOLDEN_PATH.exists(), (
            "golden fixture missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        golden = np.load(GOLDEN_PATH)["features"]
        assert golden.shape == matrix.shape == (37, 100)
        assert np.array_equal(golden, matrix)

    @pytest.mark.parametrize("engine", VECTOR_ENGINES)
    def test_vector_engines_match_golden(self, engine):
        if not GOLDEN_PATH.exists():
            pytest.skip("golden fixture missing")
        golden = np.load(GOLDEN_PATH)["features"]
        assert np.array_equal(golden, self._current(engine))

    def test_block_layout_pinned(self):
        """The 20-feature-per-decay layout: weight slots of the MAC
        block lead, channel block starts at 30, socket at 65."""
        vector = NetStat().update(make_tcp_packet(0.0))
        # First packet of a fresh extractor: every aggregation has
        # weight exactly 1 and std 0.
        assert vector.shape == (100,)
        weight_slots = list(range(0, 30, 3)) + list(range(30, 100, 7))
        assert all(vector[slot] == 1.0 for slot in weight_slots)
        std_slots = list(range(2, 30, 3)) + list(range(32, 100, 7))
        assert all(vector[slot] == 0.0 for slot in std_slots)
