"""Packet sources: ordering, restartability, labelling, mixing."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dataset
from repro.stream.sources import (
    DatasetSource,
    ListSource,
    MixedSource,
    PcapReplaySource,
)

from tests.conftest import make_udp_packet


def _packets(timestamps, src="10.0.0.1"):
    return [make_udp_packet(ts=ts, src=src) for ts in timestamps]


class TestListSource:
    def test_preserves_order_and_is_restartable(self):
        source = ListSource(_packets([0.0, 1.0, 2.0]))
        first = [p.timestamp for p in source]
        second = [p.timestamp for p in source]
        assert first == second == [0.0, 1.0, 2.0]
        assert source.labelled
        assert "3 packets" in source.describe()


class TestPcapReplaySource:
    def test_replays_written_capture(self, tmp_path):
        from repro.net.pcap import write_pcap

        path = tmp_path / "capture.pcap"
        packets = _packets([10.0, 10.5, 11.25])
        write_pcap(path, packets)
        source = PcapReplaySource(path)
        replayed = list(source)
        assert [round(p.timestamp, 6) for p in replayed] == [10.0, 10.5, 11.25]
        # pcap has no label field: the source must not claim ground truth.
        assert not source.labelled
        # Restartable: a second iteration re-opens the file.
        assert len(list(source)) == 3


class TestDatasetSource:
    def test_lazy_deterministic_generation(self):
        source = DatasetSource("Mirai", seed=3, scale=0.02)
        assert source._dataset is None  # nothing generated yet
        replayed = list(source)
        reference = generate_dataset("Mirai", seed=3, scale=0.02)
        assert len(replayed) == len(reference.packets)
        assert [p.timestamp for p in replayed] == [
            p.timestamp for p in reference.packets
        ]
        assert source.labelled
        assert "dataset:Mirai" in source.describe()


class TestMixedSource:
    def test_merges_by_timestamp(self):
        a = ListSource(_packets([0.0, 2.0, 4.0], src="10.0.0.1"), name="a")
        b = ListSource(_packets([1.0, 3.0, 5.0], src="10.0.0.2"), name="b")
        merged = list(MixedSource([a, b]))
        assert [p.timestamp for p in merged] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_break_by_source_position(self):
        a = ListSource(_packets([1.0], src="10.0.0.1"), name="a")
        b = ListSource(_packets([1.0], src="10.0.0.2"), name="b")
        merged = list(MixedSource([a, b]))
        assert [p.src_ip for p in merged] == ["10.0.0.1", "10.0.0.2"]
        # And deterministically so on replay.
        merged_again = list(MixedSource([a, b]))
        assert [p.src_ip for p in merged_again] == ["10.0.0.1", "10.0.0.2"]

    def test_labelled_only_if_all_parts_are(self, tmp_path):
        from repro.net.pcap import write_pcap

        path = tmp_path / "part.pcap"
        write_pcap(path, _packets([0.0]))
        labelled = ListSource(_packets([1.0]))
        mixed = MixedSource([labelled, PcapReplaySource(path)])
        assert not mixed.labelled
        assert MixedSource([labelled]).labelled

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MixedSource([])


class TestEdgeCases:
    """Degenerate inputs the live path must survive, not hang on."""

    def test_zero_packet_pcap_replays_as_empty(self, tmp_path):
        from repro.net.pcap import write_pcap

        path = tmp_path / "empty.pcap"
        assert write_pcap(path, []) == 0
        source = PcapReplaySource(path)
        assert list(source) == []
        assert list(source) == []  # still restartable
        assert not source.labelled
        assert "empty.pcap" in source.describe()

    def test_zero_packet_pcap_streams_to_an_empty_report(self, tmp_path):
        from repro.net.pcap import write_pcap
        from repro.stream.service import stream_capture
        from tests.test_stream_service import RecordingDetector

        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        report = stream_capture(PcapReplaySource(path),
                                RecordingDetector(),
                                warmup_packets=0, threshold=1.0)
        assert report.n_scored == 0
        assert report.packets_streamed == 0

    def test_mixed_source_of_exhausted_parts_merges_to_empty(self):
        mixed = MixedSource([ListSource([], name="a"),
                             ListSource([], name="b")])
        assert list(mixed) == []
        assert list(mixed) == []  # the merge is restartable too

    def test_mixed_source_with_one_empty_part_passes_the_other_through(
            self):
        full = ListSource(_packets([0.0, 1.0]), name="full")
        mixed = MixedSource([ListSource([], name="empty"), full])
        assert [p.timestamp for p in mixed] == [0.0, 1.0]

    def test_mixed_source_propagates_a_mid_iteration_failure(self):
        class PoisonedSource(ListSource):
            def __iter__(self):
                yield from super().__iter__()
                raise OSError("capture interface vanished")

        mixed = MixedSource([
            PoisonedSource(_packets([0.0, 2.0]), name="bad"),
            ListSource(_packets([1.0, 3.0]), name="good"),
        ])
        drained = []
        with pytest.raises(OSError, match="interface vanished"):
            for packet in mixed:
                drained.append(packet.timestamp)
        # Everything up to the failure point was still merged in order.
        assert drained == sorted(drained)
