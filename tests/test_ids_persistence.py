"""Tests for KitNET model persistence."""

import numpy as np
import pytest

from repro.ids.kitsune.kitnet import KitNET
from repro.ids.persistence import load_kitnet, save_kitnet
from repro.utils.rng import SeededRNG


@pytest.fixture
def trained_kitnet():
    net = KitNET(12, fm_grace=40, ad_grace=200, max_group=4, rng=SeededRNG(1))
    rng = SeededRNG(2)
    for _ in range(250):
        net.process(rng.uniform(0.3, 0.7, size=12))
    assert not net.in_training
    return net


class TestSaveLoad:
    def test_refuses_untrained_model(self, tmp_path):
        net = KitNET(8, fm_grace=100, ad_grace=100, rng=SeededRNG(3))
        with pytest.raises(ValueError, match="grace"):
            save_kitnet(net, tmp_path / "model.npz")

    def test_roundtrip_scores_identical(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)

        rng = SeededRNG(4)
        rows = rng.uniform(0.0, 1.5, size=(30, 12))
        original = [trained_kitnet._execute(row) for row in rows]
        restored = [loaded.process(row) for row in rows]
        np.testing.assert_allclose(restored, original, rtol=1e-12)

    def test_loaded_model_is_in_execute_mode(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert not loaded.in_feature_mapping
        assert not loaded.in_training

    def test_groups_preserved(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert loaded.mapper.groups == trained_kitnet.mapper.groups

    def test_loaded_model_has_group_index_arrays(self, trained_kitnet,
                                                 tmp_path):
        # Checkpoints bypass _build_ensemble; the gather indices must
        # still be materialised intp arrays, not per-call list lookups.
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert all(
            isinstance(g, np.ndarray) and g.dtype == np.intp
            for g in loaded._group_index
        )
        assert [g.tolist() for g in loaded._group_index] == (
            trained_kitnet.mapper.groups
        )

    def test_legacy_state_materialises_group_index(self, trained_kitnet):
        # A checkpoint from before the index arrays existed (e.g. an
        # old pickle) must lazily rebuild them on first use.
        state = dict(trained_kitnet.__dict__)
        state.pop("_group_index", None)
        state.pop("_batched_ensemble", None)
        legacy = KitNET.__new__(KitNET)
        legacy.__dict__.update(state)
        rng = SeededRNG(6)
        rows = rng.uniform(0.0, 1.5, size=(10, 12))
        expected = np.array([trained_kitnet._execute(row) for row in rows])
        assert np.array_equal(legacy.execute_batch(rows), expected)
        assert all(g.dtype == np.intp for g in legacy._group_index)

    def test_loaded_model_batched_execution_matches_per_row(
        self, trained_kitnet, tmp_path
    ):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        per_row = load_kitnet(path)
        batched = load_kitnet(path)
        rng = SeededRNG(5)
        rows = rng.uniform(0.0, 1.5, size=(30, 12))
        expected = np.array([per_row.process(row) for row in rows])
        assert np.array_equal(batched.process_batch(rows), expected)

    def test_bad_format_version_rejected(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        _rewrite_meta(path, lambda meta: meta.update(format_version=99))
        with pytest.raises(ValueError, match="format"):
            load_kitnet(path)


def _rewrite_meta(path, mutate) -> None:
    """Round-trip a checkpoint's JSON meta through ``mutate``."""
    import json

    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["meta"]).decode())
    mutate(meta)
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


class TestSamplesSeenRoundTrip:
    def test_counter_restored_exactly(self, trained_kitnet, tmp_path):
        """The true counter must survive the round trip — the old
        loader hardcoded fm+ad+1, wrong for any detector that had
        executed past the boundary before saving."""
        rng = SeededRNG(7)
        for _ in range(75):  # execute well past the grace boundary
            trained_kitnet.process(rng.uniform(0.3, 0.7, size=12))
        assert trained_kitnet.samples_seen == 325
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        assert load_kitnet(path).samples_seen == 325

    def test_v1_checkpoint_misspelled_key_still_read(
        self, trained_kitnet, tmp_path
    ):
        """Pre-fix checkpoints stored the counter under a misspelled
        meta key ('decaysamples_seen'); v1 loads must fall back to it
        rather than fabricating fm+ad+1."""
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)

        def downgrade(meta):
            meta["format_version"] = 1
            meta["decaysamples_seen"] = meta.pop("samples_seen")
            meta.pop("train_mode")
            meta.pop("train_batch")

        _rewrite_meta(path, downgrade)
        loaded = load_kitnet(path)
        assert loaded.samples_seen == trained_kitnet.samples_seen
        assert loaded.train_mode == "online"  # v1 default
        rng = SeededRNG(8)
        rows = rng.uniform(0.0, 1.5, size=(10, 12))
        expected = np.array([trained_kitnet._execute(row) for row in rows])
        assert np.array_equal(loaded.process_batch(rows), expected)

    def test_v1_checkpoint_without_any_counter_key(
        self, trained_kitnet, tmp_path
    ):
        """A v1 checkpoint missing both spellings still loads, with the
        legacy just-past-the-boundary value."""
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)

        def strip(meta):
            meta["format_version"] = 1
            meta.pop("samples_seen")
            meta.pop("train_mode")
            meta.pop("train_batch")

        _rewrite_meta(path, strip)
        loaded = load_kitnet(path)
        assert loaded.samples_seen == (
            trained_kitnet.fm_grace + trained_kitnet.ad_grace + 1
        )
        assert not loaded.in_training


class TestTrainModeRoundTrip:
    def test_format_version_is_2(self, trained_kitnet, tmp_path):
        import json

        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
        assert meta["format_version"] == 2
        assert meta["samples_seen"] == trained_kitnet.samples_seen
        assert "decaysamples_seen" not in meta

    def test_minibatch_detector_roundtrip(self, tmp_path):
        net = KitNET(
            12, fm_grace=40, ad_grace=200, max_group=4, rng=SeededRNG(1),
            train_mode="minibatch", train_batch=24,
        )
        rng = SeededRNG(2)
        net.process_batch(rng.uniform(0.3, 0.7, size=(250, 12)))
        assert not net.in_training
        path = tmp_path / "kitnet.npz"
        save_kitnet(net, path)
        loaded = load_kitnet(path)
        assert loaded.train_mode == "minibatch"
        assert loaded.train_batch == 24
        rows = rng.uniform(0.0, 1.5, size=(20, 12))
        expected = np.array([net._execute(row) for row in rows])
        assert np.array_equal(loaded.process_batch(rows), expected)


class TestStreamCheckpoints:
    """The sharded engine's crash-resume substrate: atomic, integrity-
    checked snapshots of a live streaming detector."""

    @staticmethod
    def _detector():
        from tests.faultinject import ChannelMeanDetector
        from tests.conftest import make_tcp_packet

        detector = ChannelMeanDetector()
        for i in range(25):
            detector.process(make_tcp_packet(ts=float(i)))
        return detector

    def test_roundtrip_restores_identical_state(self, tmp_path):
        from repro.ids.persistence import (load_stream_checkpoint,
                                           save_stream_checkpoint)
        from tests.conftest import make_tcp_packet

        detector = self._detector()
        path = save_stream_checkpoint(tmp_path, detector,
                                      worker_id=3, consumed=25,
                                      meta={"note": "unit"})
        checkpoint = load_stream_checkpoint(path)
        assert checkpoint.worker_id == 3
        assert checkpoint.consumed == 25
        assert checkpoint.emitted == detector.items_scored
        assert checkpoint.meta == {"note": "unit"}
        restored = checkpoint.restore_detector()
        probe = make_tcp_packet(ts=99.0)
        assert (restored.process(probe)[0].score
                == detector.process(probe)[0].score)

    def test_latest_prefers_the_newest_consumed_cursor(self, tmp_path):
        from repro.ids.persistence import (latest_stream_checkpoint,
                                           save_stream_checkpoint)

        detector = self._detector()
        for consumed in (10, 40, 25):
            save_stream_checkpoint(tmp_path, detector, worker_id=0,
                                   consumed=consumed)
        save_stream_checkpoint(tmp_path, detector, worker_id=1,
                               consumed=999)
        path, checkpoint = latest_stream_checkpoint(tmp_path, 0)
        assert checkpoint.consumed == 40
        assert "worker0-" in path.name

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        from repro.ids.persistence import (CheckpointCorrupt,
                                           latest_stream_checkpoint,
                                           load_stream_checkpoint,
                                           save_stream_checkpoint)

        detector = self._detector()
        save_stream_checkpoint(tmp_path, detector, worker_id=0,
                               consumed=10)
        newest = save_stream_checkpoint(tmp_path, detector, worker_id=0,
                                        consumed=20)
        blob = newest.read_bytes()
        newest.write_bytes(blob[:-7] + b"garbage")
        with pytest.raises(CheckpointCorrupt):
            load_stream_checkpoint(newest)
        found = latest_stream_checkpoint(tmp_path, 0)
        assert found is not None
        assert found[1].consumed == 10

    def test_truncated_and_foreign_files_are_skipped(self, tmp_path):
        from repro.ids.persistence import (latest_stream_checkpoint,
                                           save_stream_checkpoint)

        (tmp_path / "worker0-000000000099.ckpt").write_bytes(b"\x00" * 4)
        (tmp_path / "not-a-checkpoint.txt").write_text("hello")
        assert latest_stream_checkpoint(tmp_path, 0) is None
        save_stream_checkpoint(tmp_path, self._detector(), worker_id=0,
                               consumed=5)
        assert latest_stream_checkpoint(tmp_path, 0)[1].consumed == 5

    def test_prune_keeps_the_newest(self, tmp_path):
        from repro.ids.persistence import (checkpoint_filename,
                                           prune_stream_checkpoints,
                                           save_stream_checkpoint)

        detector = self._detector()
        for consumed in (10, 20, 30, 40):
            save_stream_checkpoint(tmp_path, detector, worker_id=0,
                                   consumed=consumed)
        removed = prune_stream_checkpoints(tmp_path, 0, keep=2)
        assert removed == 2
        kept = sorted(p.name for p in tmp_path.iterdir())
        assert kept == [checkpoint_filename(0, 30),
                        checkpoint_filename(0, 40)]
        with pytest.raises(ValueError):
            prune_stream_checkpoints(tmp_path, 0, keep=0)
