"""Tests for KitNET model persistence."""

import numpy as np
import pytest

from repro.ids.kitsune.kitnet import KitNET
from repro.ids.persistence import load_kitnet, save_kitnet
from repro.utils.rng import SeededRNG


@pytest.fixture
def trained_kitnet():
    net = KitNET(12, fm_grace=40, ad_grace=200, max_group=4, rng=SeededRNG(1))
    rng = SeededRNG(2)
    for _ in range(250):
        net.process(rng.uniform(0.3, 0.7, size=12))
    assert not net.in_training
    return net


class TestSaveLoad:
    def test_refuses_untrained_model(self, tmp_path):
        net = KitNET(8, fm_grace=100, ad_grace=100, rng=SeededRNG(3))
        with pytest.raises(ValueError, match="grace"):
            save_kitnet(net, tmp_path / "model.npz")

    def test_roundtrip_scores_identical(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)

        rng = SeededRNG(4)
        rows = rng.uniform(0.0, 1.5, size=(30, 12))
        original = [trained_kitnet._execute(row) for row in rows]
        restored = [loaded.process(row) for row in rows]
        np.testing.assert_allclose(restored, original, rtol=1e-12)

    def test_loaded_model_is_in_execute_mode(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert not loaded.in_feature_mapping
        assert not loaded.in_training

    def test_groups_preserved(self, trained_kitnet, tmp_path):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert loaded.mapper.groups == trained_kitnet.mapper.groups

    def test_loaded_model_has_group_index_arrays(self, trained_kitnet,
                                                 tmp_path):
        # Checkpoints bypass _build_ensemble; the gather indices must
        # still be materialised intp arrays, not per-call list lookups.
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        loaded = load_kitnet(path)
        assert all(
            isinstance(g, np.ndarray) and g.dtype == np.intp
            for g in loaded._group_index
        )
        assert [g.tolist() for g in loaded._group_index] == (
            trained_kitnet.mapper.groups
        )

    def test_legacy_state_materialises_group_index(self, trained_kitnet):
        # A checkpoint from before the index arrays existed (e.g. an
        # old pickle) must lazily rebuild them on first use.
        state = dict(trained_kitnet.__dict__)
        state.pop("_group_index", None)
        state.pop("_batched_ensemble", None)
        legacy = KitNET.__new__(KitNET)
        legacy.__dict__.update(state)
        rng = SeededRNG(6)
        rows = rng.uniform(0.0, 1.5, size=(10, 12))
        expected = np.array([trained_kitnet._execute(row) for row in rows])
        assert np.array_equal(legacy.execute_batch(rows), expected)
        assert all(g.dtype == np.intp for g in legacy._group_index)

    def test_loaded_model_batched_execution_matches_per_row(
        self, trained_kitnet, tmp_path
    ):
        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        per_row = load_kitnet(path)
        batched = load_kitnet(path)
        rng = SeededRNG(5)
        rows = rng.uniform(0.0, 1.5, size=(30, 12))
        expected = np.array([per_row.process(row) for row in rows])
        assert np.array_equal(batched.process_batch(rows), expected)

    def test_bad_format_version_rejected(self, trained_kitnet, tmp_path):
        import json

        path = tmp_path / "kitnet.npz"
        save_kitnet(trained_kitnet, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = 99
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            load_kitnet(path)
