"""Direct unit tests for the streaming service layer.

``stream_capture``'s lifecycle contract — warmup on exactly the prefix,
one ``process`` call per streamed packet, one ``finish`` at end of
stream (the sink flush), typed errors instead of hangs — was previously
only exercised through the CLI and parity suites; these tests pin it
down at the unit level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.detector import StreamScore
from repro.stream.service import stream_capture
from repro.stream.sources import ListSource

from tests.conftest import make_tcp_packet


class RecordingDetector:
    """Logs every lifecycle call; emits scores with a controllable lag.

    ``hold_back`` scores stay buffered until ``finish`` — the stand-in
    for a micro-batching detector whose tail only the end-of-stream
    flush can drain.
    """

    name = "recorder"
    unit = "packet"
    scoring_path = "per-packet"

    def __init__(self, hold_back: int = 0):
        self.batch_size = 1
        self.items_scored = 0
        self.hold_back = hold_back
        self.calls: list[str] = []
        self.warmup_packets: list = []
        self._buffer: list[StreamScore] = []
        self.finished = 0

    def warmup(self, packets) -> None:
        self.calls.append("warmup")
        self.warmup_packets = list(packets)

    def process(self, packet):
        self.calls.append("process")
        score = StreamScore(
            index=self.items_scored, timestamp=packet.timestamp,
            score=float(packet.wire_len), label=packet.label,
            attack_type=packet.attack_type,
        )
        self.items_scored += 1
        self._buffer.append(score)
        if len(self._buffer) > self.hold_back:
            emitted, self._buffer = (self._buffer[:-self.hold_back
                                                  or None],
                                     self._buffer[-self.hold_back:]
                                     if self.hold_back else [])
            return emitted
        return []

    def finish(self):
        self.calls.append("finish")
        self.finished += 1
        emitted, self._buffer = self._buffer, []
        return emitted


def _packets(n, *, label_from=None):
    return [
        make_tcp_packet(
            ts=float(i), src="10.0.0.1", dst="10.0.0.2",
            label=1 if label_from is not None and i >= label_from else 0,
        )
        for i in range(n)
    ]


class TestLifecycle:
    def test_warmup_gets_exactly_the_prefix_then_one_process_per_packet(
            self):
        detector = RecordingDetector()
        stream_capture(ListSource(_packets(10)), detector,
                       warmup_packets=4, threshold=1.0)
        assert detector.calls[0] == "warmup"
        assert [p.timestamp for p in detector.warmup_packets] == [
            0.0, 1.0, 2.0, 3.0]
        assert detector.calls.count("process") == 6
        assert detector.calls[-1] == "finish"
        assert detector.finished == 1

    def test_report_counts_reflect_the_split(self):
        report = stream_capture(
            ListSource(_packets(10)), RecordingDetector(),
            warmup_packets=4, threshold=1.0,
        )
        assert report.n_warmup == 4
        assert report.packets_streamed == 6
        assert report.n_scored == 6

    def test_finish_flushes_held_back_scores_into_the_sink(self):
        # 3 scores ride the end-of-stream flush; the report must still
        # see every streamed packet exactly once, in timestamp order.
        detector = RecordingDetector(hold_back=3)
        report = stream_capture(
            ListSource(_packets(12)), detector,
            warmup_packets=2, threshold=1e9, window_seconds=4.0,
        )
        assert report.n_scored == 10
        assert sum(w.items for w in report.windows) == 10

    def test_entirely_prefixed_capture_still_warms_up(self):
        detector = RecordingDetector()
        report = stream_capture(ListSource(_packets(3)), detector,
                                warmup_packets=8, threshold=1.0)
        assert detector.finished == 1
        assert len(detector.warmup_packets) == 3
        assert report.n_warmup == 3
        assert report.n_scored == 0

    def test_empty_source_yields_an_empty_report(self):
        report = stream_capture(ListSource([]), RecordingDetector(),
                                warmup_packets=0, threshold=1.0)
        assert report.n_scored == 0
        assert report.scores.size == 0
        assert report.windows == []
        assert report.alerts == []

    def test_on_window_fires_per_closed_window(self):
        seen = []
        stream_capture(
            ListSource(_packets(12)), RecordingDetector(),
            warmup_packets=0, threshold=1e9, window_seconds=3.0,
            on_window=seen.append,
        )
        assert len(seen) >= 2
        assert [w.index for w in seen] == sorted(w.index for w in seen)


class TestErrorPropagation:
    def test_detector_failure_propagates(self):
        class Exploding(RecordingDetector):
            def process(self, packet):
                raise RuntimeError("detector blew up")

        with pytest.raises(RuntimeError, match="detector blew up"):
            stream_capture(ListSource(_packets(5)), Exploding(),
                           warmup_packets=1, threshold=1.0)

    def test_source_failure_mid_iteration_propagates(self):
        class PoisonedSource(ListSource):
            def __iter__(self):
                for i, packet in enumerate(super().__iter__()):
                    if i == 3:
                        raise OSError("capture truncated")
                    yield packet

        with pytest.raises(OSError, match="capture truncated"):
            stream_capture(PoisonedSource(_packets(6)),
                           RecordingDetector(),
                           warmup_packets=1, threshold=1.0)

    def test_unlabelled_source_requires_threshold(self):
        source = ListSource(_packets(5), labelled=False)
        with pytest.raises(ValueError, match="explicit threshold"):
            stream_capture(source, RecordingDetector(),
                           warmup_packets=1)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup_packets"):
            stream_capture(ListSource(_packets(3)),
                           RecordingDetector(), warmup_packets=-1,
                           threshold=1.0)


class TestThresholding:
    def test_posthoc_threshold_separates_the_labelled_tail(self):
        # Scores equal wire_len; labelled packets are the same size, so
        # use a big-payload attack tail to split scores cleanly.
        packets = [
            make_tcp_packet(ts=float(i), src="10.0.0.1",
                            dst="10.0.0.2",
                            payload=b"x" * (500 if i >= 8 else 0),
                            label=1 if i >= 8 else 0)
            for i in range(12)
        ]
        report = stream_capture(ListSource(packets),
                                RecordingDetector(),
                                warmup_packets=0)
        assert report.threshold_source == "posthoc:fpr-budget"
        alerts = report.scores >= report.threshold
        assert np.array_equal(alerts, report.y_true.astype(bool))
