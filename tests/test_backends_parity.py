"""Per-backend parity contracts, driven by the shared fixtures.

Every backend registered in ``repro.backends`` ships with a declared
parity contract; this module is where those contracts are enforced.
The ``feature_backend`` fixture (in ``conftest.py``) parameterizes
each test over every feature-engine backend whose capability probe
passes on this host, so adding a backend to the registry automatically
subjects it to the full contract: bit-for-bit equality with the scalar
AfterImage reference on adversarial streams, across the batched
``update_batch`` path, at chunk boundaries, under prune churn, and
against the committed golden fixture. The ``ensemble_backend`` fixture
does the same for KitNET's execute-phase backends.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.features.netstat import NetStat

from tests.test_features_parity import (
    GOLDEN_PATH, golden_stream, random_stream,
)


class TestFeatureBackendContract:
    """Bit-for-bit vs the scalar reference, for every usable backend."""

    def test_update_batch_matches_scalar_reference(self, feature_backend):
        packets = random_stream(7, count=900)
        reference = NetStat(engine="scalar").extract_all(packets)
        matrix = NetStat(engine=feature_backend).extract_all(packets)
        assert np.array_equal(reference, matrix)

    def test_update_batch_matches_per_packet_loop(self, feature_backend):
        """The batched fast path is pure amortization: identical bits
        to n sequential ``update`` calls on the same extractor."""
        packets = random_stream(8, count=500)
        looped = NetStat(engine=feature_backend)
        rows = np.vstack([looped.update(packet) for packet in packets])
        batched = NetStat(engine=feature_backend)
        assert np.array_equal(rows, batched.update_batch(packets))

    def test_chunked_batches_match_one_batch(self, feature_backend):
        """Chunk boundaries are invisible: feeding the stream in uneven
        batches (crossing the MT path's minimum-batch threshold both
        ways) equals one extract_all."""
        packets = random_stream(9, count=700)
        whole = NetStat(engine=feature_backend).extract_all(packets)
        chunked = NetStat(engine=feature_backend)
        pieces, index = [], 0
        for size in (1, 7, 31, 97, 250):
            pieces.append(chunked.update_batch(packets[index:index + size]))
            index += size
        pieces.append(chunked.update_batch(packets[index:]))
        assert np.array_equal(whole, np.vstack(pieces))

    def test_batch_parity_under_prune_churn(self, feature_backend):
        """Key churn past max_streams forces mid-batch prunes; eviction
        decisions must match the sequential reference exactly."""
        packets = random_stream(10, count=1500)
        scalar = NetStat(engine="scalar", max_streams=40)
        vector = NetStat(engine=feature_backend, max_streams=40)
        assert np.array_equal(
            scalar.extract_all(packets), vector.extract_all(packets)
        )
        assert len(scalar._db) == len(vector._db)

    def test_matches_golden_fixture(self, feature_backend):
        golden = np.load(GOLDEN_PATH)["features"]
        matrix = NetStat(engine=feature_backend).extract_all(golden_stream())
        assert np.array_equal(golden, matrix)

    def test_backend_survives_pickling(self, feature_backend):
        """Persistence round-trips mid-stream state; the revived
        extractor (transient kernel handles rebuilt lazily) continues
        bit-identically."""
        packets = random_stream(11, count=400)
        original = NetStat(engine=feature_backend)
        original.update_batch(packets[:200])
        revived = pickle.loads(pickle.dumps(original))
        tail_a = original.update_batch(packets[200:])
        tail_b = revived.update_batch(packets[200:])
        assert np.array_equal(tail_a, tail_b)
        assert revived.backend == original.backend


class TestEnsembleBackendContract:
    """KitNET execute-phase backends score identically per row."""

    def _scores(self, backend: str) -> np.ndarray:
        from repro.ids.kitsune import Kitsune

        packets = random_stream(12, count=600)
        ids = Kitsune(
            fm_grace=100, ad_grace=200, seed=0, ensemble_backend=backend,
        )
        return ids.score_batch(packets)

    def test_backends_score_bit_identically(self, ensemble_backend):
        reference = self._scores("per-row")
        assert np.array_equal(reference, self._scores(ensemble_backend))

    def test_resolved_backend_reported(self, ensemble_backend):
        from repro.ids.kitsune import Kitsune

        ids = Kitsune(fm_grace=10, ad_grace=10,
                      ensemble_backend=ensemble_backend)
        assert ids.kitnet.resolved_ensemble_backend == ensemble_backend
