"""StreamingFlowTracker must reproduce FlowAssembler's flow boundaries."""

from __future__ import annotations

from repro.datasets import generate_dataset
from repro.flows.assembler import FlowAssembler
from repro.net.tcp import TCPFlags
from repro.stream.tracker import StreamingFlowTracker

from tests.conftest import make_tcp_packet, make_udp_packet


def _flow_signature(flow):
    """Identity + boundary signature of one flow."""
    return (
        str(flow.key),
        round(flow.start_time, 9),
        round(flow.end_time, 9),
        flow.total_packets,
        flow.total_bytes,
        flow.label,
    )


def _assert_same_flows(packets, **timeouts):
    batch = FlowAssembler(**timeouts).assemble(packets)
    tracker = StreamingFlowTracker(**timeouts)
    streamed = tracker.add_many(packets)
    streamed.extend(tracker.flush())
    # assemble() sorts by start time; completion order differs — the
    # flow *set* and every boundary must agree exactly.
    assert sorted(map(_flow_signature, streamed)) == sorted(
        map(_flow_signature, batch)
    )
    assert tracker.flows_completed == len(batch)
    return streamed


class TestBoundaryParity:
    def test_tcp_close_emits_immediately(self):
        packets = [
            make_tcp_packet(ts=0.0, flags=TCPFlags.SYN),
            make_tcp_packet(ts=0.1, flags=TCPFlags.ACK),
            make_tcp_packet(ts=0.2, flags=TCPFlags.FIN | TCPFlags.ACK),
            make_udp_packet(ts=5.0),
        ]
        tracker = StreamingFlowTracker()
        assert tracker.add(packets[0]) == []
        assert tracker.add(packets[1]) == []
        closed = tracker.add(packets[2])
        assert len(closed) == 1  # FIN closes the flow on that packet
        assert closed[0].total_packets == 3
        assert tracker.open_flows == 0
        tracker.add(packets[3])
        assert tracker.open_flows == 1

    def test_idle_timeout_eviction(self):
        packets = [
            make_udp_packet(ts=0.0, sport=1111),
            make_udp_packet(ts=1.0, sport=1111),
            # 200s of silence: the first flow idles out when this arrives.
            make_udp_packet(ts=201.0, sport=2222),
        ]
        tracker = StreamingFlowTracker(idle_timeout=120.0)
        tracker.add(packets[0])
        tracker.add(packets[1])
        evicted = tracker.add(packets[2])
        assert len(evicted) == 1
        assert evicted[0].end_time == 1.0
        _assert_same_flows(packets, idle_timeout=120.0)

    def test_active_timeout_splits_long_flows(self):
        packets = [
            make_udp_packet(ts=float(t), sport=3333) for t in range(0, 50, 5)
        ]
        streamed = _assert_same_flows(
            packets, idle_timeout=120.0, active_timeout=20.0
        )
        assert len(streamed) > 1  # the long-lived flow was split

    def test_dataset_scale_parity(self):
        """Whole synthetic captures stream to identical flow exports."""
        for name in ("Mirai", "UNSW-NB15"):
            dataset = generate_dataset(name, seed=0, scale=0.03)
            _assert_same_flows(dataset.packets)

    def test_non_ip_packets_counted_not_flowed(self):
        from repro.net.arp import ARPHeader
        from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
        from repro.net.packet import Packet

        arp = Packet(
            timestamp=0.0,
            ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
            arp=ARPHeader(sender_ip="10.0.0.1", target_ip="10.0.0.2"),
        )
        tracker = StreamingFlowTracker()
        assert tracker.add(arp) == []
        assert tracker.non_ip_packets == 1
        assert tracker.open_flows == 0
