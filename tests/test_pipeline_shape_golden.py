"""Golden-fixture pin of the Table IV qualitative findings at small scale.

``shape_checks()`` encodes the paper's six headline claims. At the
benchmark scale (0.35) all six reproduce; at this test's small scale
(0.1) the fixture records the truth as it stands — including the one
claim that is *expected* to deviate at reduced scale — so any silent
change to generators, adaptation, thresholds or IDS internals that
flips a finding shows up as a diff against the golden file.

Regenerate after an intentional behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src pytest tests/test_pipeline_shape_golden.py

and review the fixture diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.pipeline import IDSAnalysisPipeline

GOLDEN_PATH = Path(__file__).parent / "golden" / "shape_checks_scale010.json"
SEED = 0
SCALE = 0.1
#: Metric tolerance: counts-over-counts ratios are exactly reproducible
#: on one platform; the slack only absorbs last-ulp libm differences
#: across OS/libc builds.
METRIC_ABS_TOL = 1e-6


@pytest.fixture(scope="module")
def pipeline():
    p = IDSAnalysisPipeline(seed=SEED, scale=SCALE)
    p.run_all()
    return p


def _snapshot(pipeline) -> dict:
    return {
        "seed": SEED,
        "scale": SCALE,
        "shape_checks": [
            {"claim": check.claim, "passed": check.passed}
            for check in pipeline.shape_checks()
        ],
        "metrics": {
            f"{ids}|{dataset}": {
                "accuracy": result.metrics.accuracy,
                "precision": result.metrics.precision,
                "recall": result.metrics.recall,
                "f1": result.metrics.f1,
            }
            for (ids, dataset), result in sorted(pipeline.results.items())
        },
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing: {GOLDEN_PATH}. Generate it with "
            "REPRO_REGEN_GOLDEN=1 and commit the file."
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_shape_checks_match_golden(pipeline):
    snapshot = _snapshot(pipeline)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    golden = _load_golden()

    assert snapshot["shape_checks"] == golden["shape_checks"], (
        "a qualitative Table IV finding flipped; if intentional, "
        "regenerate the golden fixture (see module docstring)"
    )


def test_cell_metrics_match_golden(pipeline):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration run")
    golden = _load_golden()
    snapshot = _snapshot(pipeline)
    assert snapshot["metrics"].keys() == golden["metrics"].keys()
    for cell, expected in golden["metrics"].items():
        actual = snapshot["metrics"][cell]
        for metric, value in expected.items():
            assert actual[metric] == pytest.approx(value, abs=METRIC_ABS_TOL), (
                f"{cell} {metric} drifted from golden"
            )


def test_golden_covers_full_matrix():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration run")
    golden = _load_golden()
    assert len(golden["metrics"]) == 20
    assert len(golden["shape_checks"]) == 6
    assert golden["seed"] == SEED and golden["scale"] == SCALE
