"""Tests for the standardized threshold-selection strategies."""

import numpy as np
import pytest

from repro.core.metrics import compute_metrics
from repro.core.thresholds import (
    best_f1_threshold,
    detection_priority_threshold,
    fpr_budget_threshold,
    percentile_threshold,
    standard_threshold,
)


def _separable():
    """Benign scores ~0.1, attack scores ~0.9."""
    y = np.array([0] * 50 + [1] * 50)
    scores = np.concatenate([np.linspace(0.0, 0.2, 50),
                             np.linspace(0.8, 1.0, 50)])
    return y, scores


def _inseparable():
    """Scores carry no class information."""
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 200)
    scores = rng.random(200)
    return y, scores


class TestFprBudget:
    def test_separable_full_recall_zero_fpr(self):
        y, scores = _separable()
        t = fpr_budget_threshold(y, scores, max_fpr=0.05)
        m = compute_metrics(y, scores >= t)
        assert m.recall == 1.0
        assert m.false_positive_rate <= 0.05

    def test_budget_respected_on_noise(self):
        y, scores = _inseparable()
        t = fpr_budget_threshold(y, scores, max_fpr=0.05)
        m = compute_metrics(y, scores >= t)
        assert m.false_positive_rate <= 0.05

    def test_all_same_scores_flags_nothing(self):
        y = np.array([0, 0, 1, 1])
        scores = np.ones(4)
        t = fpr_budget_threshold(y, scores, max_fpr=0.1)
        assert (scores >= t).sum() == 0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            fpr_budget_threshold(np.array([0, 1]), np.array([0.1, 0.9]),
                                 max_fpr=1.5)


class TestDetectionPriority:
    def test_separable_picks_clean_boundary(self):
        y, scores = _separable()
        t = detection_priority_threshold(y, scores, lambda_fpr=0.5)
        m = compute_metrics(y, scores >= t)
        assert m.recall == 1.0
        assert m.false_positive_rate == 0.0

    def test_inseparable_flags_nearly_everything(self):
        """The Kitsune-on-CICIDS2017 behaviour: maximising recall with a
        soft FP penalty floods the alert channel when scores don't
        separate."""
        y, scores = _inseparable()
        t = detection_priority_threshold(y, scores, lambda_fpr=0.3)
        flagged_fraction = (scores >= t).mean()
        assert flagged_fraction > 0.9

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            detection_priority_threshold(np.array([0, 1]),
                                         np.array([0.1, 0.9]),
                                         lambda_fpr=-1.0)


class TestBestF1:
    def test_finds_optimum_on_separable(self):
        y, scores = _separable()
        t = best_f1_threshold(y, scores)
        assert compute_metrics(y, scores >= t).f1 == 1.0

    def test_beats_or_ties_other_strategies(self):
        y, scores = _inseparable()
        t_best = best_f1_threshold(y, scores)
        t_budget = fpr_budget_threshold(y, scores, max_fpr=0.05)
        f1_best = compute_metrics(y, scores >= t_best).f1
        f1_budget = compute_metrics(y, scores >= t_budget).f1
        assert f1_best >= f1_budget


class TestPercentile:
    def test_value(self):
        train = np.arange(101, dtype=float)
        assert percentile_threshold(train, percentile=99.0) == pytest.approx(99.0)

    def test_empty_train(self):
        assert percentile_threshold(np.array([])) == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            percentile_threshold(np.array([1.0]), percentile=150)


class TestStandardDispatch:
    def test_known_strategies(self):
        y, scores = _separable()
        for strategy in ("fpr-budget", "detection-priority", "best-f1"):
            t = standard_threshold(y, scores, strategy=strategy)
            assert np.isfinite(t)

    def test_fixed(self):
        t = standard_threshold(np.array([0, 1]), np.array([0.2, 0.8]),
                               strategy="fixed", fixed_value=0.5)
        assert t == 0.5

    def test_percentile_needs_train_scores(self):
        with pytest.raises(ValueError):
            standard_threshold(np.array([0, 1]), np.array([0.1, 0.9]),
                               strategy="percentile")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown threshold"):
            standard_threshold(np.array([0, 1]), np.array([0.1, 0.9]),
                               strategy="magic")
