"""Coverage for remaining edges: profile helpers, encoder heuristics,
feature-exporter edge cases, metric report plumbing."""

import numpy as np
import pytest

from repro.core.metrics import MetricReport
from repro.features.encoding import FlowVectorEncoder
from repro.flows.assembler import FlowAssembler
from repro.flows.netflow import netflow_features
from repro.flows.record import RunningStats
from repro.ids.slips.profiles import build_profile_windows

from tests.conftest import make_tcp_packet, make_udp_packet


class TestProfileWindowHelpers:
    def _window(self):
        packets = [
            make_tcp_packet(0.0, dst="10.0.0.2", sport=1000, dport=80),
            make_tcp_packet(1.0, dst="10.0.0.2", sport=1001, dport=443),
            make_tcp_packet(2.0, dst="10.0.0.3", sport=1002, dport=80),
        ]
        flows = FlowAssembler().assemble(packets)
        windows = build_profile_windows(flows)
        return windows[("10.0.0.1", 0)]

    def test_distinct_dst_ports_scoped_by_ip(self):
        window = self._window()
        assert window.distinct_dst_ports("10.0.0.2") == {80, 443}
        assert window.distinct_dst_ports() == {80, 443}

    def test_distinct_dst_ips_scoped_by_port(self):
        window = self._window()
        assert window.distinct_dst_ips(80) == {"10.0.0.2", "10.0.0.3"}
        assert window.distinct_dst_ips() == {"10.0.0.2", "10.0.0.3"}

    def test_flows_to(self):
        window = self._window()
        assert len(window.flows_to("10.0.0.2")) == 2
        assert len(window.flows_to("10.0.0.2", 443)) == 1

    def test_conversation_groups_partition(self):
        window = self._window()
        groups = window.conversation_groups()
        assert sum(len(v) for v in groups.values()) == window.flow_count


class TestEncoderHeuristics:
    @pytest.mark.parametrize("name", [
        "sbytes", "total_fwd_packets", "flow_bytes_per_s", "sload", "rate",
        "spkts",
    ])
    def test_magnitude_names_get_log_scaled(self, name):
        encoder = FlowVectorEncoder([name])
        row = encoder.encode_one({name: 1000.0})
        assert row[0] == pytest.approx(np.log1p(1000.0))

    @pytest.mark.parametrize("name", ["dur", "sport", "state_fin", "sjit"])
    def test_non_magnitude_names_untouched(self, name):
        encoder = FlowVectorEncoder([name])
        assert encoder.encode_one({name: 1000.0})[0] == 1000.0


class TestNetflowEdgeCases:
    def test_one_sided_flow_ratios(self):
        """A flow with zero backward traffic must not divide by zero."""
        packets = [make_udp_packet(float(i) * 0.1, payload=b"z" * 50)
                   for i in range(5)]
        flow = FlowAssembler().assemble(packets)[0]
        features = netflow_features(flow)
        assert features["dpkts"] == 0.0
        assert features["byte_ratio"] == 1.0  # "forward has bytes" marker
        assert features["pkt_ratio"] == 1.0
        assert np.isfinite(features["dload"])


class TestRunningStatsMergeEdge:
    def test_merge_into_empty(self):
        a = RunningStats()
        b = RunningStats()
        for v in (1.0, 2.0, 3.0):
            b.add(v)
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(2.0)


class TestMetricReportPlumbing:
    def test_prevalence_of_empty_report(self):
        report = MetricReport(accuracy=0, precision=0, recall=0, f1=0)
        assert report.prevalence == 0.0
        assert report.false_positive_rate == 0.0

    def test_support_counts(self):
        report = MetricReport(accuracy=0.5, precision=0.5, recall=0.5,
                              f1=0.5, tp=1, fp=2, tn=3, fn=4)
        assert report.support == 10
        assert report.positives == 5


class TestExperimentConfigDescribe:
    def test_describe_mentions_cell(self):
        from repro.core.experiment import ExperimentConfig

        config = ExperimentConfig(ids_name="DNN", dataset_name="Mirai",
                                  seed=7)
        assert "DNN" in config.describe()
        assert "Mirai" in config.describe()
        assert "7" in config.describe()


class TestShapeCheckRendering:
    def test_render_includes_pass_fail_marks(self):
        from repro.core.pipeline import IDSAnalysisPipeline
        from repro.core.report import render_shape_checks

        pipeline = IDSAnalysisPipeline(
            seed=0, scale=0.05,
            ids_names=("Slips", "DNN", "Kitsune", "HELAD"),
            dataset_names=("BoT-IoT", "Stratosphere", "Mirai",
                           "UNSW-NB15", "CICIDS2017"),
        )
        # Tiny scale: some checks will fail; rendering must still work
        # and mark each claim PASS or FAIL.
        pipeline.run_all()
        text = render_shape_checks(pipeline)
        assert text.count("[") >= 6
        assert "PASS" in text or "FAIL" in text
