"""Round-trip and error tests for every protocol layer codec."""

import pytest

from repro.net.arp import ARPHeader, OP_REPLY
from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.net.icmp import ICMPHeader, TYPE_ECHO_REPLY
from repro.net.ipv4 import IPv4Header, PROTO_UDP
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader(src_mac="02:00:00:00:00:01",
                                dst_mac="02:00:00:00:00:02",
                                ethertype=ETHERTYPE_ARP)
        parsed, rest = EthernetHeader.from_bytes(header.to_bytes() + b"tail")
        assert parsed == header
        assert rest == b"tail"

    def test_too_short(self):
        with pytest.raises(ValueError, match="too short"):
            EthernetHeader.from_bytes(b"\x00" * 10)


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(src_ip="1.2.3.4", dst_ip="5.6.7.8",
                            protocol=PROTO_UDP, ttl=42, identification=777)
        raw = header.to_bytes(payload_len=100)
        parsed, rest = IPv4Header.from_bytes(raw + b"\xab" * 100)
        assert parsed.src_ip == "1.2.3.4"
        assert parsed.dst_ip == "5.6.7.8"
        assert parsed.ttl == 42
        assert parsed.identification == 777
        assert parsed.total_length == 120
        assert len(rest) == 100

    def test_checksum_verifies(self):
        raw = IPv4Header(src_ip="9.9.9.9", dst_ip="1.1.1.1").to_bytes(0)
        header, _ = IPv4Header.from_bytes(raw)
        assert header.verify_checksum(raw)

    def test_corrupted_checksum_fails(self):
        raw = bytearray(IPv4Header(src_ip="9.9.9.9", dst_ip="1.1.1.1").to_bytes(0))
        raw[8] ^= 0xFF  # flip TTL bits
        header, _ = IPv4Header.from_bytes(bytes(raw))
        assert not header.verify_checksum(bytes(raw))

    def test_rejects_non_v4(self):
        raw = bytearray(IPv4Header().to_bytes(0))
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError, match="version"):
            IPv4Header.from_bytes(bytes(raw))

    def test_too_short(self):
        with pytest.raises(ValueError):
            IPv4Header.from_bytes(b"\x45\x00")

    def test_protocol_name(self):
        assert IPv4Header(protocol=6).protocol_name == "tcp"
        assert IPv4Header(protocol=99).protocol_name == "proto-99"


class TestTCP:
    def test_roundtrip(self):
        header = TCPHeader(src_port=4444, dst_port=80, seq=123, ack=456,
                           flags=TCPFlags.SYN | TCPFlags.ECE, window=1024)
        parsed, rest = TCPHeader.from_bytes(header.to_bytes() + b"data")
        assert parsed.src_port == 4444
        assert parsed.flags == TCPFlags.SYN | TCPFlags.ECE
        assert parsed.window == 1024
        assert rest == b"data"

    def test_has_flag(self):
        header = TCPHeader(flags=TCPFlags.SYN | TCPFlags.ACK)
        assert header.has(TCPFlags.SYN)
        assert not header.has(TCPFlags.FIN)

    def test_too_short(self):
        with pytest.raises(ValueError):
            TCPHeader.from_bytes(b"\x00" * 19)


class TestUDP:
    def test_roundtrip_with_length(self):
        header = UDPHeader(src_port=5353, dst_port=53)
        raw = header.to_bytes(payload_len=7) + b"payload"
        parsed, rest = UDPHeader.from_bytes(raw)
        assert parsed.length == 15
        assert rest == b"payload"

    def test_too_short(self):
        with pytest.raises(ValueError):
            UDPHeader.from_bytes(b"\x00" * 4)


class TestICMP:
    def test_roundtrip(self):
        header = ICMPHeader(icmp_type=TYPE_ECHO_REPLY, identifier=9, sequence=3)
        parsed, rest = ICMPHeader.from_bytes(header.to_bytes(b"ping") + b"ping")
        assert parsed.icmp_type == TYPE_ECHO_REPLY
        assert parsed.identifier == 9
        assert parsed.is_echo
        assert rest == b"ping"

    def test_too_short(self):
        with pytest.raises(ValueError):
            ICMPHeader.from_bytes(b"\x00" * 7)


class TestARP:
    def test_roundtrip(self):
        header = ARPHeader(operation=OP_REPLY,
                           sender_mac="02:00:00:00:00:0a", sender_ip="10.0.0.9",
                           target_mac="02:00:00:00:00:0b", target_ip="10.0.0.1")
        parsed, _ = ARPHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_rejects_non_ethernet_ipv4(self):
        raw = bytearray(ARPHeader().to_bytes())
        raw[0] = 0xFF  # hardware type
        with pytest.raises(ValueError):
            ARPHeader.from_bytes(bytes(raw))

    def test_too_short(self):
        with pytest.raises(ValueError):
            ARPHeader.from_bytes(b"\x00" * 20)
