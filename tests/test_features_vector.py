"""Tests for the structure-of-arrays AfterImage engine.

Covers the :class:`VectorIncStatDB` drop-in API, the partial-selection
prune (eviction set identical to the scalar reference, including
insertion-order tie-breaks and covariance endpoint eviction), capacity
growth, and pickling.
"""

import pickle
import random

import numpy as np
import pytest

from repro.features import _native
from repro.features.afterimage import DEFAULT_DECAYS, IncStatDB
from repro.features.vector import VectorIncStatDB

NATIVE_AVAILABLE = _native.load_kernel() is not None

#: Kernels exercised by every parity test; "native" is skipped where no
#: C compiler exists.
KERNELS = ["numpy"] + (["native"] if NATIVE_AVAILABLE else [])


class TestVectorIncStatDB:
    def test_1d_output_size(self):
        db = VectorIncStatDB()
        out = db.update_get_1d("k", 100.0, 0.0)
        assert len(out) == 3 * len(DEFAULT_DECAYS)

    def test_2d_output_size(self):
        db = VectorIncStatDB()
        out = db.update_get_2d("a>b", "b>a", 100.0, 0.0)
        assert len(out) == 7 * len(DEFAULT_DECAYS)

    def test_stream_reuse(self):
        db = VectorIncStatDB()
        db.update_get_1d("k", 100.0, 0.0)
        db.update_get_1d("k", 100.0, 0.0)
        assert len(db) == 1

    def test_rejects_empty_decays(self):
        with pytest.raises(ValueError):
            VectorIncStatDB(())

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            VectorIncStatDB(kernel="simd")

    def test_native_kernel_request_without_support(self, monkeypatch):
        monkeypatch.setattr(_native, "load_kernel", lambda: None)
        with pytest.raises(RuntimeError):
            VectorIncStatDB(kernel="native")

    def test_pruning_bounds_memory(self):
        db = VectorIncStatDB(max_streams=10)
        for i in range(50):
            db.update_get_1d(f"k{i}", 1.0, float(i))
        assert len(db) <= 30

    def test_capacity_growth(self):
        db = VectorIncStatDB(capacity=8)
        for i in range(100):
            db.update_get_1d(f"k{i}", 1.0, float(i))
        assert len(db) == 100
        # Values survive the growth reallocations: the slowest-decay
        # weight of the first stream still reflects its first insert
        # (2^(-0.01 * 100) = 0.5 of it) plus the new one.
        out = db.update_get_1d("k0", 1.0, 100.0)
        assert out[12] == 1.5

    def test_pickle_roundtrip(self):
        db = VectorIncStatDB()
        db.update_get_1d("k", 64.0, 1.0)
        clone = pickle.loads(pickle.dumps(db))
        assert db.update_get_1d("k", 64.0, 2.0) == clone.update_get_1d(
            "k", 64.0, 2.0
        )

    def test_kernel_name_reported(self):
        assert VectorIncStatDB(kernel="numpy").kernel_name == "numpy"
        if NATIVE_AVAILABLE:
            assert VectorIncStatDB(kernel="auto").kernel_name == "native"


class TestScalarVectorDBParity:
    """update_get_1d/2d must be bit-for-bit identical to IncStatDB."""

    def _random_ops(self, seed, n=400):
        rng = random.Random(seed)
        ts = 0.0
        ops = []
        for _ in range(n):
            if rng.random() < 0.6:
                ts += rng.choice([0.0, 0.001, 0.5, 40.0])
            key_a = f"s{rng.randrange(12)}"
            key_b = f"s{rng.randrange(12)}"
            value = float(rng.randrange(40, 1500))
            if rng.random() < 0.5:
                ops.append(("1d", key_a, None, value, ts))
            else:
                ops.append(("2d", f"{key_a}>{key_b}", f"{key_b}>{key_a}",
                            value, ts))
        return ops

    @pytest.mark.parametrize("max_streams", [6, 100_000])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parity(self, seed, max_streams):
        scalar = IncStatDB(max_streams=max_streams)
        vectors = {
            kernel: VectorIncStatDB(max_streams=max_streams, kernel=kernel)
            for kernel in KERNELS
        }
        for kind, key_a, key_b, value, ts in self._random_ops(seed):
            if kind == "1d":
                expected = scalar.update_get_1d(key_a, value, ts)
                for kernel, db in vectors.items():
                    got = db.update_get_1d(key_a, value, ts)
                    assert got == expected, kernel
            else:
                expected = scalar.update_get_2d(key_a, key_b, value, ts)
                for kernel, db in vectors.items():
                    got = db.update_get_2d(key_a, key_b, value, ts)
                    assert got == expected, kernel
            for kernel, db in vectors.items():
                assert len(db) == len(scalar), kernel

    def test_self_conversation_aliasing(self):
        """src == dst makes both direction keys one stream."""
        scalar = IncStatDB()
        expected = [
            scalar.update_get_2d("x>x", "x>x", 100.0, step * 0.1)
            for step in range(5)
        ]
        for kernel in KERNELS:
            db = VectorIncStatDB(kernel=kernel)
            got = [
                db.update_get_2d("x>x", "x>x", 100.0, step * 0.1)
                for step in range(5)
            ]
            assert got == expected, kernel
            assert len(db) == 1


class TestEvictionOrder:
    """The prune must evict exactly the scalar reference's victims."""

    def _surviving_keys(self, db, keys):
        if isinstance(db, IncStatDB):
            return [key for key in keys if key in db._streams]
        return [key for key in keys if key in db._keys]

    def test_stalest_half_evicted(self):
        keys = [f"k{i}" for i in range(9)]
        times = [5.0, 1.0, 8.0, 0.5, 3.0, 9.0, 2.0, 7.0, 6.0]
        survivors = {}
        for name, db in [("scalar", IncStatDB(max_streams=8)),
                         ("vector", VectorIncStatDB(max_streams=8))]:
            for key, ts in zip(keys, times):
                db.update_get_1d(key, 1.0, ts)
            survivors[name] = self._surviving_keys(db, keys)
        # 9 streams > 8 => the 4 stalest (times 0.5, 1, 2, 3) go.
        assert survivors["scalar"] == ["k0", "k2", "k5", "k7", "k8"]
        assert survivors["vector"] == survivors["scalar"]

    def test_tie_break_matches_insertion_order(self):
        # All streams share one timestamp: ties must evict the earliest
        # inserted keys first, exactly like heapq.nsmallest.
        keys = [f"t{i}" for i in range(9)]
        survivors = {}
        for name, db in [("scalar", IncStatDB(max_streams=8)),
                         ("vector", VectorIncStatDB(max_streams=8))]:
            for key in keys:
                db.update_get_1d(key, 1.0, 1.0)
            survivors[name] = self._surviving_keys(db, keys)
        assert survivors["scalar"] == ["t4", "t5", "t6", "t7", "t8"]
        assert survivors["vector"] == survivors["scalar"]

    def test_cov_evicted_with_either_endpoint(self):
        scalar = IncStatDB(max_streams=4)
        vector = VectorIncStatDB(max_streams=4)
        for db in (scalar, vector):
            db.update_get_2d("a>b", "b>a", 10.0, 0.0)   # a>b, b>a
            db.update_get_1d("c", 10.0, 1.0)
            db.update_get_1d("d", 10.0, 2.0)
            # Fifth stream prunes the two stalest (a>b and b>a).
            db.update_get_1d("e", 10.0, 3.0)
        assert "a>b" not in scalar._streams
        assert "a>b" not in scalar._covs and "a>b" not in scalar._cov_pair
        assert "a>b" not in vector._keys
        assert "a>b" not in vector._cov_keys and "a>b" not in vector._cov_pair
        # Re-seen channel re-pairs against fresh streams identically.
        out_s = scalar.update_get_2d("a>b", "b>a", 10.0, 4.0)
        out_v = vector.update_get_2d("a>b", "b>a", 10.0, 4.0)
        assert out_s == out_v

    def test_prune_after_churn_stays_bit_identical(self):
        rng = random.Random(7)
        scalar = IncStatDB(max_streams=5)
        vector = VectorIncStatDB(max_streams=5)
        for step in range(300):
            key = f"k{rng.randrange(20)}"
            ts = step * rng.choice([0.0, 0.01, 1.0])
            expected = scalar.update_get_1d(key, 50.0, ts)
            assert vector.update_get_1d(key, 50.0, ts) == expected
            assert len(vector) == len(scalar)


def test_scalar_prune_uses_partial_selection():
    """Regression: the scalar prune no longer full-sorts (behavioural
    proxy — eviction equals nsmallest of last times)."""
    db = IncStatDB(max_streams=6)
    times = [(f"s{i}", float((i * 37) % 11)) for i in range(7)]
    for key, ts in times:
        db.update_get_1d(key, 1.0, ts)
    expected_evicted = {
        key for key, _ in sorted(times, key=lambda kv: kv[1])[: 7 // 2]
    }
    assert set(times_key for times_key, _ in times) - set(db._streams) \
        == expected_evicted
