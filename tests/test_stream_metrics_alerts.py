"""Hand-computed checks for windowed metrics and hysteresis alerting."""

from __future__ import annotations

import pytest

from repro.stream.alerts import HysteresisAlerter
from repro.stream.metrics import WindowedMetrics


class TestWindowedMetrics:
    def test_hand_computed_two_windows(self):
        wm = WindowedMetrics(10.0)
        # Window 0 ([100, 110)): tp, fp, tn
        wm.add(100.0, True, 1)   # tp
        wm.add(104.0, True, 0)   # fp
        wm.add(109.9, False, 0)  # tn
        # Window 1 ([110, 120)): fn, tp
        wm.add(110.0, False, 1)  # fn
        wm.add(115.0, True, 1)   # tp
        windows = wm.finalize()
        assert [w.index for w in windows] == [0, 1]
        w0, w1 = windows
        assert (w0.start, w0.end) == (100.0, 110.0)
        assert (w0.tp, w0.fp, w0.tn, w0.fn) == (1, 1, 1, 0)
        assert w0.alerts == 2 and w0.items == 3
        assert w0.alert_rate == pytest.approx(2 / 3)
        r0 = w0.report
        assert r0.precision == pytest.approx(0.5)
        assert r0.recall == pytest.approx(1.0)
        assert r0.f1 == pytest.approx(2 / 3)
        assert (w1.tp, w1.fp, w1.tn, w1.fn) == (1, 0, 0, 1)
        assert w1.report.recall == pytest.approx(0.5)
        # Overall aggregate: tp=2 fp=1 tn=1 fn=1 over 5 items.
        overall = wm.overall()
        assert (overall.tp, overall.fp, overall.tn, overall.fn) == (2, 1, 1, 1)
        assert overall.accuracy == pytest.approx(3 / 5)
        assert wm.alert_rate == pytest.approx(3 / 5)

    def test_gap_windows_are_skipped(self):
        wm = WindowedMetrics(1.0)
        wm.add(0.0, False, 0)
        wm.add(100.0, False, 0)  # 99 empty windows in between
        windows = wm.finalize()
        assert [w.index for w in windows] == [0, 100]
        assert all(w.items == 1 for w in windows)

    def test_unlabelled_stream_has_no_reports(self):
        wm = WindowedMetrics(10.0)
        wm.add(0.0, True, None)
        wm.add(1.0, False, None)
        (window,) = wm.finalize()
        assert window.report is None
        assert window.alerts == 1
        assert wm.overall() is None

    def test_on_close_fires_per_window(self):
        closed = []
        wm = WindowedMetrics(1.0, on_close=closed.append)
        wm.add(0.0, False, 0)
        wm.add(1.5, False, 0)
        assert len(closed) == 1  # first window closed by the second item
        wm.finalize()
        assert len(closed) == 2

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedMetrics(0.0)


class TestEvaluateStreamOrdering:
    def test_flow_completion_order_is_resorted_to_stream_time(self):
        """Flow scores arrive in completion order: a long flow's end
        time can precede an already-emitted short flow's. The evaluator
        must replay them in stream time, not emission order."""
        from repro.stream.detector import StreamScore
        from repro.stream.service import _evaluate_stream

        emitted = [
            # Long flow closes at t=25 and is emitted first...
            StreamScore(index=0, timestamp=25.0, score=1.0, label=1),
            # ...then two short flows that ended earlier surface.
            StreamScore(index=1, timestamp=3.0, score=0.0, label=0),
            StreamScore(index=2, timestamp=14.0, score=1.0, label=1),
        ]
        windows, alerter = _evaluate_stream(
            emitted, labelled=True, threshold=0.5,
            window_seconds=10.0, on_window=None,
        )
        assert [w.index for w in windows.windows] == [0, 1, 2]
        assert [(w.items, w.alerts) for w in windows.windows] == [
            (1, 0), (1, 1), (1, 1),
        ]
        # Episodes are time-ordered too: one from t=14, one from t=25
        # (score dips below release at no point in between... the t=25
        # item extends the episode opened at t=14).
        assert len(alerter.episodes) == 1
        episode = alerter.episodes[0]
        assert (episode.start, episode.end) == (14.0, 25.0)


class TestHysteresisAlerter:
    def test_episode_opens_at_threshold_closes_below_release(self):
        # threshold 1.0, release 0.8: 0.9 keeps the episode alive.
        alerter = HysteresisAlerter(1.0, release_ratio=0.8)
        assert alerter.update(0.0, 0.5) is None
        assert alerter.update(1.0, 1.2) is None      # opens
        assert alerter.active
        assert alerter.update(2.0, 0.9) is None      # hysteresis holds
        assert alerter.update(3.0, 1.5) is None      # new peak
        episode = alerter.update(4.0, 0.1)           # closes
        assert episode is not None
        assert (episode.start, episode.end) == (1.0, 3.0)
        assert episode.items == 3
        assert episode.peak_score == 1.5
        assert episode.peak_timestamp == 3.0
        assert episode.duration == 2.0
        assert not alerter.active

    def test_flutter_without_hysteresis_would_split(self):
        """The score dips to 0.9 twice; one episode, not three."""
        alerter = HysteresisAlerter(1.0, release_ratio=0.8)
        for ts, score in enumerate([1.1, 0.9, 1.1, 0.9, 1.1]):
            alerter.update(float(ts), score)
        assert alerter.finish() is not None
        assert len(alerter.episodes) == 1
        assert alerter.episodes[0].items == 5

    def test_finish_closes_open_episode(self):
        alerter = HysteresisAlerter(0.5)
        alerter.update(0.0, 0.7)
        episode = alerter.finish()
        assert episode is not None and episode.items == 1
        assert alerter.finish() is None

    def test_attack_type_majority_vote(self):
        alerter = HysteresisAlerter(0.5)
        alerter.update(0.0, 0.9, attack_type="ddos")
        alerter.update(1.0, 0.9, attack_type="scan")
        alerter.update(2.0, 0.9, attack_type="ddos")
        episode = alerter.finish()
        assert episode.attack_type == "ddos"

    def test_nonpositive_threshold_release_does_not_rise(self):
        alerter = HysteresisAlerter(-0.5, release_ratio=0.8)
        assert alerter.release == -0.5
        alerter.update(0.0, 0.0)
        assert alerter.active
