"""Tests for dataset-to-IDS adaptation (sampling, rebalancing, encoding)."""

import numpy as np
import pytest

from repro.core.preprocessing import (
    flow_feature_dicts,
    prepare_flow_experiment,
    prepare_packet_experiment,
    rebalance_flows,
    rebalance_packets,
)
from repro.datasets import generate_dataset
from repro.flows.assembler import FlowAssembler
from repro.flows.key import flow_key_for_packet
from repro.utils.rng import SeededRNG

from tests.conftest import make_udp_packet


def _mixed_packets(benign_flows=30, attack_flows=30, per_flow=5):
    packets = []
    for f in range(benign_flows):
        for i in range(per_flow):
            packets.append(make_udp_packet(f + i * 0.01, sport=4000 + f))
    for f in range(attack_flows):
        for i in range(per_flow):
            p = make_udp_packet(f + i * 0.01 + 0.5, sport=20000 + f, label=1)
            packets.append(p)
    packets.sort(key=lambda p: p.timestamp)
    return packets


class TestRebalancePackets:
    def test_reduces_attack_prevalence(self):
        packets = _mixed_packets(10, 50)
        out = rebalance_packets(packets, 0.2, SeededRNG(1))
        prevalence = np.mean([p.label for p in out])
        assert prevalence == pytest.approx(0.2, abs=0.08)

    def test_increases_attack_prevalence(self):
        packets = _mixed_packets(50, 10)
        out = rebalance_packets(packets, 0.6, SeededRNG(2))
        prevalence = np.mean([p.label for p in out])
        assert prevalence == pytest.approx(0.6, abs=0.1)

    def test_none_keeps_composition(self):
        packets = _mixed_packets(10, 10)
        out = rebalance_packets(packets, None, SeededRNG(3))
        assert len(out) == len(packets)

    def test_whole_flows_kept(self):
        packets = _mixed_packets(10, 40)
        out = rebalance_packets(packets, 0.3, SeededRNG(4))
        by_flow: dict = {}
        for p in out:
            by_flow.setdefault(flow_key_for_packet(p), 0)
            by_flow[flow_key_for_packet(p)] += 1
        assert all(count == 5 for count in by_flow.values())

    def test_max_packets_budget(self):
        packets = _mixed_packets(40, 40)
        out = rebalance_packets(packets, None, SeededRNG(5), max_packets=100)
        assert len(out) <= 110  # flow-granular thinning overshoots slightly

    def test_sorted_output(self):
        out = rebalance_packets(_mixed_packets(), 0.5, SeededRNG(6))
        stamps = [p.timestamp for p in out]
        assert stamps == sorted(stamps)


class TestRebalanceFlows:
    def _flows(self, benign=40, attack=40):
        return FlowAssembler().assemble(_mixed_packets(benign, attack))

    def test_target_prevalence(self):
        flows = self._flows(10, 60)
        out = rebalance_flows(flows, 0.25, SeededRNG(1))
        prevalence = np.mean([f.label for f in out])
        assert prevalence == pytest.approx(0.25, abs=0.08)

    def test_max_flows(self):
        flows = self._flows()
        out = rebalance_flows(flows, None, SeededRNG(2), max_flows=20)
        assert len(out) == 20

    def test_sorted_by_start(self):
        out = rebalance_flows(self._flows(), 0.5, SeededRNG(3))
        starts = [f.start_time for f in out]
        assert starts == sorted(starts)


class TestPreparePacketExperiment:
    def test_benign_prefix_preferred(self):
        dataset = generate_dataset("Mirai", seed=0, scale=0.05)
        data = prepare_packet_experiment(dataset, SeededRNG(1))
        assert data.notes["trained_on"] == "benign-prefix"
        assert all(p.label == 0 for p in data.train_packets)

    def test_time_prefix_fallback(self):
        dataset = generate_dataset("UNSW-NB15", seed=0, scale=0.05)
        data = prepare_packet_experiment(dataset, SeededRNG(2),
                                         prefer_benign_prefix=False)
        assert data.notes["trained_on"] == "time-prefix"

    def test_prevalence_target_applied(self):
        dataset = generate_dataset("CICIDS2017", seed=0, scale=0.05)
        data = prepare_packet_experiment(dataset, SeededRNG(3),
                                         test_prevalence=0.1)
        assert data.notes["test_prevalence"] == pytest.approx(0.1, abs=0.07)

    def test_labels_align_with_test_packets(self):
        dataset = generate_dataset("BoT-IoT", seed=0, scale=0.05)
        data = prepare_packet_experiment(dataset, SeededRNG(4))
        assert len(data.y_true) == len(data.test_packets)
        assert all(
            int(p.label) == y
            for p, y in zip(data.test_packets, data.y_true)
        )


class TestPrepareFlowExperiment:
    def test_chronological_split(self):
        dataset = generate_dataset("UNSW-NB15", seed=0, scale=0.05)
        data = prepare_flow_experiment(dataset, SeededRNG(1),
                                       train_fraction=0.6)
        assert data.train_flows and data.test_flows
        latest_train = max(f.end_time for f in data.train_flows)
        earliest_test = min(f.end_time for f in data.test_flows)
        assert latest_train <= earliest_test + 1e-9

    def test_cross_corpus_training(self):
        from repro.datasets import kddcup

        dataset = generate_dataset("Stratosphere", seed=0, scale=0.05)
        reference = kddcup.generate(seed=0, scale=0.1)
        data = prepare_flow_experiment(dataset, SeededRNG(2),
                                       train_dataset=reference)
        assert data.notes["cross_corpus_training"]
        assert data.notes["train_prevalence"] > 0.5  # KDD is attack-heavy

    def test_schema_mismatch_zero_fills(self):
        dataset = generate_dataset("Stratosphere", seed=0, scale=0.05)
        data = prepare_flow_experiment(dataset, SeededRNG(3), schema="netflow")
        assert data.notes["missing_features"]  # conn.log lacks Argus stats
        missing_idx = [
            data.encoder.feature_names.index(name)
            for name in data.encoder.missing_features
        ]
        assert np.all(data.test_features[:, missing_idx] == 0.0)

    def test_zero_train_fraction_uses_everything_for_test(self):
        dataset = generate_dataset("Mirai", seed=0, scale=0.05)
        data = prepare_flow_experiment(dataset, SeededRNG(4),
                                       train_fraction=0.0)
        assert data.train_flows == []
        assert len(data.test_flows) > 0

    def test_unknown_schema(self):
        with pytest.raises(ValueError, match="unknown flow schema"):
            flow_feature_dicts([], "bogus")
