"""Integration tests: the experiment matrix, single cells, and the
pipeline with report rendering.

These run at very small scale; the benchmark harness runs the
full-scale versions.
"""

import numpy as np
import pytest

from repro.core.experiment import (
    DATASET_ORDER,
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    run_experiment,
)
from repro.core.pipeline import IDSAnalysisPipeline
from repro.core.report import (
    render_shape_checks,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


class TestExperimentMatrix:
    def test_twenty_cells(self):
        assert len(EXPERIMENT_MATRIX) == 20

    def test_every_ids_covers_every_dataset(self):
        for ids_name in ("Kitsune", "HELAD", "DNN", "Slips"):
            for dataset in DATASET_ORDER:
                assert (ids_name, dataset) in EXPERIMENT_MATRIX

    def test_dnn_uses_cross_corpus_training(self):
        for dataset in DATASET_ORDER:
            assert EXPERIMENT_MATRIX[("DNN", dataset)].cross_corpus_train

    def test_slips_is_training_free(self):
        for dataset in DATASET_ORDER:
            config = EXPERIMENT_MATRIX[("Slips", dataset)]
            assert config.flow_train_fraction == 0.0

    def test_unknown_ids_rejected(self):
        config = ExperimentConfig(ids_name="Zeek", dataset_name="Mirai")
        with pytest.raises(KeyError, match="unknown IDS"):
            run_experiment(config)


class TestSingleCells:
    def test_slips_cell_runs(self):
        config = ExperimentConfig(
            ids_name="Slips", dataset_name="Stratosphere", scale=0.05,
            flow_train_fraction=0.0, threshold_strategy="fixed",
        )
        result = run_experiment(config)
        assert result.metrics.support == len(result.y_true)
        assert result.runtime_seconds > 0
        assert result.notes["schema"] == "netflow"

    def test_dnn_cell_runs(self):
        config = ExperimentConfig(
            ids_name="DNN", dataset_name="BoT-IoT", scale=0.05,
            cross_corpus_train=True, test_prevalence=0.9,
            threshold_strategy="fixed",
        )
        result = run_experiment(config)
        assert 0.0 <= result.metrics.f1 <= 1.0

    def test_kitsune_cell_runs(self):
        config = ExperimentConfig(
            ids_name="Kitsune", dataset_name="Mirai", scale=0.05,
            max_test_packets=2000, max_train_packets=1500,
            threshold_strategy="detection-priority",
        )
        result = run_experiment(config)
        assert len(result.scores) == len(result.y_true)
        assert result.metrics.recall > 0.5  # floods are unmistakable

    def test_determinism(self):
        config = ExperimentConfig(
            ids_name="Slips", dataset_name="Mirai", scale=0.05,
            flow_train_fraction=0.0, threshold_strategy="fixed",
        )
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.metrics == b.metrics
        np.testing.assert_array_equal(a.scores, b.scores)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def mini_pipeline(self):
        pipeline = IDSAnalysisPipeline(
            seed=0, scale=0.08,
            ids_names=("DNN", "Slips"),
            dataset_names=("BoT-IoT", "Stratosphere"),
        )
        pipeline.run_all()
        return pipeline

    def test_all_cells_present(self, mini_pipeline):
        assert len(mini_pipeline.results) == 4

    def test_averages(self, mini_pipeline):
        avg = mini_pipeline.average_for("DNN")
        assert 0.0 <= avg.f1 <= 1.0

    def test_table4_rendering(self, mini_pipeline):
        table = render_table4(mini_pipeline)
        assert "IDS: DNN" in table
        assert "IDS: Slips" in table
        assert "Average:" in table
        assert "BoT-IoT" in table

    def test_row_cells(self, mini_pipeline):
        cells = mini_pipeline.row("Slips")
        assert [c.dataset_name for c in cells] == ["BoT-IoT", "Stratosphere"]


class TestStaticReports:
    def test_table1_contains_all_systems(self):
        table = render_table1()
        assert "Kitsune" in table
        assert "Used in Paper" in table
        assert "Dependency errors" in table
        assert len(table.splitlines()) == 2 + 15

    def test_table2_lists_used_datasets(self):
        table = render_table2()
        for name in DATASET_ORDER:
            assert name in table

    def test_table3_lists_excluded(self):
        table = render_table3()
        assert "KDD-Cup99" in table
        assert "250gb" in table
        assert len(table.splitlines()) == 2 + 13
