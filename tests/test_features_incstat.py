"""Tests for damped incremental statistics (AfterImage core)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.features.incstat import IncStat, IncStatCov


class TestIncStat:
    def test_single_insert(self):
        stat = IncStat(1.0, init_time=0.0)
        stat.insert(10.0, 0.0)
        assert stat.weight == 1.0
        assert stat.mean == 10.0
        assert stat.std == 0.0

    def test_mean_of_equal_time_inserts(self):
        stat = IncStat(1.0)
        for value in (2.0, 4.0, 6.0):
            stat.insert(value, 0.0)
        assert stat.mean == pytest.approx(4.0)
        assert stat.weight == pytest.approx(3.0)

    def test_decay_halves_weight(self):
        # decay lambda=1: factor 2^(-1*dt); dt=1 halves the weight.
        stat = IncStat(1.0, init_time=0.0)
        stat.insert(5.0, 0.0)
        stat.decay_to(1.0)
        assert stat.weight == pytest.approx(0.5)
        # Mean is invariant under decay (both sums scale together).
        assert stat.mean == pytest.approx(5.0)

    def test_faster_decay_forgets_faster(self):
        slow = IncStat(0.1, init_time=0.0)
        fast = IncStat(5.0, init_time=0.0)
        for stat in (slow, fast):
            stat.insert(1.0, 0.0)
            stat.insert(1.0, 1.0)
        assert fast.weight < slow.weight

    def test_no_decay_for_same_timestamp(self):
        stat = IncStat(5.0, init_time=0.0)
        stat.insert(1.0, 1.0)
        weight = stat.weight
        stat.decay_to(1.0)
        assert stat.weight == weight

    def test_rejects_non_positive_decay(self):
        with pytest.raises(ValueError):
            IncStat(0.0)

    def test_stats_tuple(self):
        stat = IncStat(1.0)
        stat.insert(3.0, 0.0)
        w, mean, std = stat.stats()
        assert (w, mean, std) == (1.0, 3.0, 0.0)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 1e4), st.floats(0.0, 100.0)),
            min_size=1,
            max_size=50,
        )
    )
    def test_invariants_property(self, events):
        """Weight stays in (0, n]; variance is non-negative; mean is
        bounded by observed values."""
        stat = IncStat(1.0, init_time=0.0)
        t = 0.0
        values = []
        for value, dt in events:
            t += dt
            stat.insert(value, t)
            values.append(value)
        assert 0.0 < stat.weight <= len(values) + 1e-9
        assert stat.variance >= 0.0
        assert min(values) - 1e-6 <= stat.mean <= max(values) + 1e-6


class TestIncStatCov:
    def _pair(self):
        a = IncStat(1.0, init_time=0.0)
        b = IncStat(1.0, init_time=0.0)
        return a, b, IncStatCov(a, b)

    def test_requires_matching_decay(self):
        with pytest.raises(ValueError):
            IncStatCov(IncStat(1.0), IncStat(5.0))

    def test_magnitude(self):
        a, b, cov = self._pair()
        a.insert(3.0, 0.0)
        b.insert(4.0, 0.0)
        assert cov.magnitude() == pytest.approx(5.0)

    def test_radius_zero_for_constant_streams(self):
        a, b, cov = self._pair()
        for t in range(3):
            a.insert(2.0, float(t))
            b.insert(7.0, float(t))
        assert cov.radius() == pytest.approx(0.0, abs=1e-12)

    def test_correlation_bounded(self):
        a, b, cov = self._pair()
        t = 0.0
        for i in range(50):
            t += 0.1
            value = float(i % 7)
            a.insert(value, t)
            cov.update(value, t, from_a=True)
            b.insert(10.0 - value, t)
            cov.update(10.0 - value, t, from_a=False)
        assert -1.0 <= cov.correlation <= 1.0

    def test_empty_cov_is_zero(self):
        _, _, cov = self._pair()
        assert cov.covariance == 0.0
        assert cov.correlation == 0.0

    def test_stats_tuple_shape(self):
        a, b, cov = self._pair()
        a.insert(1.0, 0.0)
        cov.update(1.0, 0.0, from_a=True)
        assert len(cov.stats()) == 4
        assert all(math.isfinite(v) for v in cov.stats())
