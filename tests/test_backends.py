"""The compute-backend registry, capability discovery, and selection
plumbing: ``repro.backends`` declarations, the native-kernel fallback
contract, and the CLI surfaces that report the resolved backend."""

from __future__ import annotations

import json
import warnings

import pytest

from repro import backends
from repro.backends.registry import BackendSpec, _REGISTRY
from repro.cli import main
from repro.features import _native


class TestRegistry:
    def test_components_and_declared_backends(self):
        assert set(backends.components()) == {
            backends.FEATURE_ENGINE, backends.INGEST, backends.ENSEMBLE,
        }
        assert backends.backend_names(backends.FEATURE_ENGINE) == (
            "scalar", "vector-numpy", "vector-native", "vector-native-mt",
        )
        assert backends.backend_names(backends.INGEST) == (
            "packet-objects", "columnar-mmap",
        )
        assert backends.backend_names(backends.ENSEMBLE) == (
            "per-row", "batched-einsum",
        )

    def test_unknown_component_and_backend_errors_name_the_known_set(self):
        with pytest.raises(KeyError, match="feature-engine, ingest, ensemble"):
            backends.backend_names("gpu")
        with pytest.raises(KeyError) as excinfo:
            backends.get_backend(backends.FEATURE_ENGINE, "vector-cuda")
        message = str(excinfo.value)
        assert "vector-cuda" in message
        assert "vector-native-mt" in message  # the known set is listed

    def test_always_available_backends(self):
        names = [
            spec.name
            for spec in backends.available_backends(backends.FEATURE_ENGINE)
        ]
        # Pure-Python backends carry no probe and are available anywhere.
        assert "scalar" in names
        assert "vector-numpy" in names

    def test_resolve_auto_picks_highest_ranked_available(self):
        spec = backends.resolve(backends.FEATURE_ENGINE, "auto")
        if _native.load_kernel() is None:
            assert spec.name == "vector-numpy"
        else:
            # The MT kernel only auto-outranks single-thread native on
            # multi-core hosts; either way auto picks a native kernel.
            assert spec.name.startswith("vector-native")
        assert backends.resolve(backends.ENSEMBLE).name == "batched-einsum"

    def test_resolve_explicit_unavailable_backend_raises(self):
        key = (backends.FEATURE_ENGINE, "vector-test-unavailable")
        backends.register(BackendSpec(
            component=backends.FEATURE_ENGINE,
            name="vector-test-unavailable",
            description="test-only",
            parity="n/a",
            expected_speedup="n/a",
            probe=lambda: "requires hardware this host lacks",
        ))
        try:
            with pytest.raises(RuntimeError, match="requires hardware"):
                backends.resolve(
                    backends.FEATURE_ENGINE, "vector-test-unavailable"
                )
            # ...and auto never selects it either.
            assert backends.resolve(backends.FEATURE_ENGINE).name != (
                "vector-test-unavailable"
            )
        finally:
            del _REGISTRY[key]

    def test_capabilities_shape(self):
        caps = backends.capabilities()
        assert caps["cpu_count"] >= 1
        assert isinstance(caps["native_kernel"], bool)
        assert caps["mt_threads"] == _native.MT_GROUPS
        per_component = caps["components"]
        assert set(per_component) == set(backends.components())
        scalar = per_component[backends.FEATURE_ENGINE]["scalar"]
        assert scalar == {"available": True, "reason": None}

    def test_default_feature_backend_matches_kernel_presence(self):
        expected = (
            "vector-native" if _native.load_kernel() is not None
            else "vector-numpy"
        )
        assert backends.default_feature_backend() == expected


class TestBackendNotes:
    def test_kitsune_reports_both_backends(self):
        from repro.ids.kitsune import Kitsune

        ids = Kitsune(fm_grace=10, ad_grace=10)
        notes = backends.backend_notes(ids)
        assert notes["feature_backend"] == backends.default_feature_backend()
        assert notes["ensemble_backend"] == "batched-einsum"

    def test_flow_ids_and_none_report_nothing(self):
        from repro.ids.slips import SlipsIDS

        assert backends.backend_notes(SlipsIDS()) == {}
        assert backends.backend_notes(None) == {}

    def test_ids_compute_backends_covers_evaluated_ids(self):
        from repro.ids.registry import ids_compute_backends

        table = ids_compute_backends()
        assert table["Kitsune"]["feature"] == (
            backends.default_feature_backend()
        )
        assert table["Kitsune"]["ensemble"] == "batched-einsum"
        assert table["HELAD"]["feature"] == (
            backends.default_feature_backend()
        )
        assert table["HELAD"]["ensemble"] is None
        assert table["Slips"] == {"feature": None, "ensemble": None}


class TestNativeFallback:
    """A missing compiler degrades to NumPy with one warning, never an
    exception; ``REPRO_DISABLE_NATIVE`` is a silent opt-out."""

    @pytest.fixture
    def fresh_native_state(self, monkeypatch, tmp_path):
        monkeypatch.setattr(_native, "_load_attempted", False)
        monkeypatch.setattr(_native, "_cached_kernel", None)
        monkeypatch.setattr(_native, "_unavailable_reason", None)
        # An empty cache dir forces a real compile attempt.
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.delenv("REPRO_DISABLE_NATIVE", raising=False)

    def test_compile_failure_warns_once_and_returns_none(
        self, fresh_native_state, monkeypatch,
    ):
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        with pytest.warns(RuntimeWarning, match="falling back to the NumPy"):
            assert _native.load_kernel() is None
        assert "compilation failed" in _native.unavailable_reason()
        # The failure is latched: later calls stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _native.load_kernel() is None

    def test_disable_env_is_a_silent_opt_out(
        self, fresh_native_state, monkeypatch,
    ):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _native.load_kernel() is None
        assert _native.unavailable_reason() == "REPRO_DISABLE_NATIVE is set"

    def test_netstat_still_constructs_without_native(
        self, fresh_native_state, monkeypatch,
    ):
        from repro.features.netstat import NetStat

        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        extractor = NetStat(engine="vector")
        assert extractor.backend == "vector-numpy"
        with pytest.raises(RuntimeError, match="unavailable"):
            NetStat(engine="vector-native")


class TestBackendsCLI:
    def test_backends_subcommand_renders_capability_table(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "feature-engine" in out
        assert "vector-native-mt" in out
        assert "batched-einsum" in out

    def test_backends_json_payload(self, tmp_path, capsys):
        out = tmp_path / "caps.json"
        assert main(["backends", "--json", str(out)]) == 0
        caps = json.loads(out.read_text())
        assert caps["cpu_count"] >= 1
        assert "feature-engine" in caps["components"]

    def test_stream_reports_resolved_feature_backend(self, tmp_path):
        native = _native.load_kernel() is not None
        backend = "vector-native" if native else "vector-numpy"
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "mirai",
            "--scale", "0.03", "--feature-backend", backend,
            "--json", str(out), "--quiet",
        ])
        assert code == 0
        notes = json.loads(out.read_text())["notes"]
        assert notes["feature_backend"] == backend
        assert notes["ensemble_backend"] == "batched-einsum"

    def test_sharded_stream_reports_resolved_feature_backend(self, tmp_path):
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "mirai",
            "--scale", "0.03", "--feature-backend", "auto",
            "--workers", "1", "--checkpoint-every", "500",
            "--json", str(out), "--quiet",
        ])
        assert code == 0
        notes = json.loads(out.read_text())["notes"]
        assert notes["sharded"] is True
        assert notes["feature_backend"] == backends.default_feature_backend()
        assert notes["ensemble_backend"] == "batched-einsum"

    def test_stream_feature_backend_rejected_for_flow_ids(self, capsys):
        code = main([
            "stream", "--ids", "slips", "--dataset", "mirai",
            "--scale", "0.03", "--feature-backend", "scalar", "--quiet",
        ])
        assert code == 2
        assert "packet-level" in capsys.readouterr().err

    def test_stream_unavailable_backend_is_an_error(
        self, capsys, monkeypatch,
    ):
        if _native.load_kernel() is not None:
            monkeypatch.setattr(_native, "_cached_kernel", None)
            monkeypatch.setattr(
                _native, "_unavailable_reason", "forced off for test",
            )
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "mirai",
            "--scale", "0.03", "--feature-backend", "vector-native-mt",
            "--quiet",
        ])
        assert code == 2
        assert "unavailable" in capsys.readouterr().err

    def test_profile_json_reports_backends(self, tmp_path):
        out = tmp_path / "profile.json"
        assert main([
            "profile", "--dataset", "mirai", "--scale", "0.03",
            "--engine", "vector-numpy", "--json", str(out),
        ]) == 0
        profile = json.loads(out.read_text())
        assert profile["feature_backend"] == "vector-numpy"
        assert profile["ensemble_backend"] == "batched-einsum"


class TestMtAutoRankDemotion:
    """Auto ranking trusts the measured MT probe over the core count."""

    def _fresh_probe(self, monkeypatch, value: str) -> None:
        from repro.features import vector

        monkeypatch.setenv(vector.MT_PROBE_ENV, value)
        vector.measured_mt_speedup.cache_clear()

    @pytest.fixture(autouse=True)
    def _restore_probe_cache(self):
        from repro.features import vector

        yield
        vector.measured_mt_speedup.cache_clear()

    def test_measured_slowdown_demotes_mt_below_native(self, monkeypatch):
        from repro.backends import registry

        # Plenty of cores, but the probe measured the pool *slower*
        # than single-thread (the contended-runner case: 0.93x). The
        # rank must drop below vector-native's priority 20.
        monkeypatch.setattr(registry.os, "cpu_count", lambda: 4)
        self._fresh_probe(monkeypatch, "0.93")
        assert registry._mt_auto_rank() == 15
        if _native.load_kernel() is not None:
            assert backends.resolve(backends.FEATURE_ENGINE).name == (
                "vector-native"
            )

    def test_measured_speedup_keeps_mt_on_top(self, monkeypatch):
        from repro.backends import registry

        monkeypatch.setattr(registry.os, "cpu_count", lambda: 4)
        self._fresh_probe(monkeypatch, "1.8")
        assert registry._mt_auto_rank() == 30
        if _native.load_kernel() is not None:
            assert backends.resolve(backends.FEATURE_ENGINE).name == (
                "vector-native-mt"
            )

    def test_single_core_demotes_without_probing(self, monkeypatch):
        from repro.backends import registry

        monkeypatch.setattr(registry.os, "cpu_count", lambda: 1)
        # Even a glowing measurement cannot promote MT on one core.
        self._fresh_probe(monkeypatch, "2.5")
        assert registry._mt_auto_rank() == 15

    def test_probe_off_falls_back_to_core_count(self, monkeypatch):
        from repro.backends import registry

        monkeypatch.setattr(registry.os, "cpu_count", lambda: 4)
        self._fresh_probe(monkeypatch, "off")
        from repro.features import vector

        assert vector.measured_mt_speedup() is None
        assert registry._mt_auto_rank() == 30


class TestIngestRegistry:
    def test_ingest_backends_always_available(self):
        names = [
            spec.name
            for spec in backends.available_backends(backends.INGEST)
        ]
        assert names == ["packet-objects", "columnar-mmap"]

    def test_auto_prefers_columnar(self):
        assert backends.resolve(backends.INGEST).name == "columnar-mmap"
        assert backends.default_ingest_backend() == "columnar-mmap"

    def test_explicit_names_resolve(self):
        for name in ("packet-objects", "columnar-mmap"):
            assert backends.resolve(backends.INGEST, name).name == name
