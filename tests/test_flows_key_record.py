"""Tests for flow keys, running stats and flow records."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.flows.key import FlowKey, flow_key_for_packet
from repro.flows.record import (
    ACTIVE_IDLE_THRESHOLD,
    DirectionStats,
    FlowRecord,
    RunningStats,
)
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags

from tests.conftest import make_tcp_packet, make_udp_packet


class TestFlowKey:
    def test_bidirectional_same_key(self):
        forward = flow_key_for_packet(make_tcp_packet(sport=1000, dport=80))
        backward = flow_key_for_packet(
            make_tcp_packet(src="10.0.0.2", dst="10.0.0.1", sport=80, dport=1000)
        )
        assert forward == backward

    def test_distinct_ports_distinct_keys(self):
        a = flow_key_for_packet(make_tcp_packet(sport=1000))
        b = flow_key_for_packet(make_tcp_packet(sport=1001))
        assert a != b

    def test_protocol_distinguishes(self):
        tcp = flow_key_for_packet(make_tcp_packet(sport=5, dport=6))
        udp = flow_key_for_packet(make_udp_packet(sport=5, dport=6))
        assert tcp != udp

    def test_non_ip_returns_none(self):
        assert flow_key_for_packet(Packet()) is None

    @given(
        st.tuples(
            st.integers(0, 2**32 - 1), st.integers(0, 65535),
            st.integers(0, 2**32 - 1), st.integers(0, 65535),
        )
    )
    def test_canonical_symmetry_property(self, quad):
        from repro.net.addresses import int_to_ip

        src_ip, sport, dst_ip, dport = quad
        a = FlowKey.canonical(int_to_ip(src_ip), sport, int_to_ip(dst_ip),
                              dport, "tcp")
        b = FlowKey.canonical(int_to_ip(dst_ip), dport, int_to_ip(src_ip),
                              sport, "tcp")
        assert a == b


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0
        assert stats.min_or(7.0) == 7.0
        assert stats.max_or(-7.0) == -7.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_matches_numpy_property(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        np.testing.assert_allclose(stats.mean, np.mean(values), rtol=1e-9,
                                   atol=1e-6)
        np.testing.assert_allclose(stats.variance, np.var(values), rtol=1e-6,
                                   atol=1e-4)
        assert stats.min == min(values)
        assert stats.max == max(values)
        np.testing.assert_allclose(stats.total, sum(values), rtol=1e-9,
                                   atol=1e-6)

    @given(
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=40),
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=40),
    )
    def test_merge_equals_combined_property(self, left, right):
        a = RunningStats()
        for v in left:
            a.add(v)
        b = RunningStats()
        for v in right:
            b.add(v)
        a.merge(b)
        combined = left + right
        np.testing.assert_allclose(a.mean, np.mean(combined), rtol=1e-8,
                                   atol=1e-6)
        np.testing.assert_allclose(a.variance, np.var(combined), rtol=1e-5,
                                   atol=1e-4)

    def test_merge_empty_is_noop(self):
        a = RunningStats()
        a.add(3.0)
        a.merge(RunningStats())
        assert a.count == 1 and a.mean == 3.0


class TestFlowRecord:
    def _flow(self, packets):
        record = FlowRecord.open(flow_key_for_packet(packets[0]), packets[0])
        for packet in packets[1:]:
            record.add(packet)
        record.close()
        return record

    def test_direction_assignment(self):
        record = self._flow([
            make_tcp_packet(0.0, flags=TCPFlags.SYN),
            make_tcp_packet(0.1, src="10.0.0.2", dst="10.0.0.1", sport=80,
                            dport=1234, flags=TCPFlags.SYN | TCPFlags.ACK),
            make_tcp_packet(0.2, payload=b"abc"),
        ])
        assert record.src_ip == "10.0.0.1"  # initiator
        assert record.forward.packets == 2
        assert record.backward.packets == 1
        assert record.forward.payload_bytes == 3

    def test_flag_counting_and_termination(self):
        record = self._flow([
            make_tcp_packet(0.0, flags=TCPFlags.SYN),
            make_tcp_packet(0.1, flags=TCPFlags.ACK | TCPFlags.PSH),
            make_tcp_packet(0.2, flags=TCPFlags.FIN | TCPFlags.ACK),
        ])
        assert record.flag_count("SYN") == 1
        assert record.flag_count("PSH") == 1
        assert record.flag_count("FIN") == 1
        assert record.flag_count("RST") == 0
        assert record.terminated

    def test_label_any_attack_packet(self):
        record = self._flow([
            make_tcp_packet(0.0),
            make_tcp_packet(0.1, label=1, attack_type="ddos"),
            make_tcp_packet(0.2),
        ])
        assert record.label == 1
        assert record.attack_type == "ddos"

    def test_benign_flow_label(self):
        record = self._flow([make_tcp_packet(0.0), make_tcp_packet(0.1)])
        assert record.label == 0
        assert record.attack_type == ""

    def test_dominant_attack_type(self):
        record = self._flow([
            make_tcp_packet(0.0, label=1, attack_type="scan"),
            make_tcp_packet(0.1, label=1, attack_type="ddos"),
            make_tcp_packet(0.2, label=1, attack_type="ddos"),
        ])
        assert record.attack_type == "ddos"

    def test_active_idle_periods(self):
        gap = ACTIVE_IDLE_THRESHOLD + 5.0
        record = self._flow([
            make_tcp_packet(0.0),
            make_tcp_packet(1.0),
            make_tcp_packet(1.0 + gap),  # idle gap splits activity
            make_tcp_packet(2.0 + gap),
        ])
        assert record.idle_periods.count == 1
        assert record.idle_periods.mean == pytest.approx(gap)
        assert record.active_periods.count == 2

    def test_duration_and_totals(self):
        record = self._flow([
            make_tcp_packet(1.0, payload=b"aa"),
            make_tcp_packet(3.5, payload=b"bbb"),
        ])
        assert record.duration == pytest.approx(2.5)
        assert record.total_packets == 2

    def test_init_window_captured(self):
        stats = DirectionStats()
        stats.add(make_tcp_packet(0.0))
        assert stats.init_window == 65535
