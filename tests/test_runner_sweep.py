"""The multi-seed sweep subsystem: expansion, aggregation, determinism.

Three load-bearing guarantees:

* aggregation math is exactly mean / population-std / min / max over
  the per-seed values (checked against hand-computed numbers);
* seed ``s`` of a sweep is bit-identical to a plain engine run at seed
  ``s``, serial or parallel;
* a warm rerun of an unchanged sweep is served entirely from the
  result cache.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.experiment import (
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    register_experiment_kind,
    resolve_experiment_kind,
    run_experiment,
)
from repro.core.metrics import MetricReport
from repro.core.report import render_table4_sweep
from repro.core.robustness import stability_report
from repro.runner import (
    CellSweep,
    ExperimentEngine,
    MetricDistribution,
    SweepResult,
    expand_configs,
    sweep_cell,
    sweep_configs,
    sweep_matrix,
)

SCALE = 0.05
CHEAP = dict(ids_name="Slips", dataset_name="Mirai", scale=SCALE,
             flow_train_fraction=0.0, threshold_strategy="fixed")


class TestExpandConfigs:
    def test_crosses_seeds_preserving_base_order(self):
        bases = [
            ExperimentConfig(ids_name="Slips", dataset_name="Mirai"),
            ExperimentConfig(ids_name="DNN", dataset_name="Mirai"),
        ]
        expanded = expand_configs(bases, seeds=(3, 7))
        assert [(c.ids_name, c.seed) for c in expanded] == [
            ("Slips", 3), ("DNN", 3), ("Slips", 7), ("DNN", 7),
        ]

    def test_scale_grid_is_outermost(self):
        base = ExperimentConfig(ids_name="Slips", dataset_name="Mirai")
        expanded = expand_configs([base], seeds=(0, 1), scales=(0.1, 0.2))
        assert [(c.scale, c.seed) for c in expanded] == [
            (0.1, 0), (0.1, 1), (0.2, 0), (0.2, 1),
        ]

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            expand_configs(
                [ExperimentConfig(ids_name="Slips", dataset_name="Mirai")],
                seeds=(),
            )


class TestMetricDistribution:
    def test_hand_computed_statistics(self):
        dist = MetricDistribution((0.2, 0.4, 0.9))
        assert dist.mean == pytest.approx(0.5)
        # Population std: sqrt(((0.3)^2 + (0.1)^2 + (0.4)^2) / 3)
        assert dist.std == pytest.approx(math.sqrt(0.26 / 3))
        assert dist.min == 0.2
        assert dist.max == 0.9

    def test_single_value_zero_std(self):
        dist = MetricDistribution((0.75,))
        assert dist.mean == 0.75
        assert dist.std == 0.0

    def test_format(self):
        assert MetricDistribution((0.5, 0.7)).format() == "0.6000±0.1000"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MetricDistribution(())


class TestCellSweepAggregation:
    def _cell(self):
        def result(f1):
            config = ExperimentConfig(ids_name="X", dataset_name="Y")
            from repro.core.experiment import ExperimentResult

            return ExperimentResult(
                config=config,
                metrics=MetricReport(accuracy=f1, precision=f1,
                                     recall=f1, f1=f1),
                threshold=0.5,
                scores=np.empty(0),
                y_true=np.empty(0, dtype=int),
                notes={},
                runtime_seconds=0.0,
            )

        return CellSweep(
            ids_name="X", dataset_name="Y", seeds=(0, 1),
            results=(result(0.4), result(0.8)),
        )

    def test_distribution_and_per_seed_rows(self):
        cell = self._cell()
        assert cell.f1.mean == pytest.approx(0.6)
        assert cell.f1.std == pytest.approx(0.2)
        assert [(seed, m.f1) for seed, m in cell.per_seed()] == [
            (0, 0.4), (1, 0.8),
        ]

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError, match="unknown metric"):
            self._cell().distribution("auroc")


class TestSweepDeterminism:
    def test_each_seed_matches_direct_run(self):
        sweep = sweep_cell("Slips", "Mirai", seeds=(0, 1), scale=SCALE,
                           engine=ExperimentEngine(jobs=1))
        assert sweep.seeds == (0, 1)
        base = EXPERIMENT_MATRIX[("Slips", "Mirai")]
        for seed, result in zip(sweep.seeds, sweep.results):
            direct = run_experiment(replace(base, seed=seed, scale=SCALE))
            np.testing.assert_array_equal(direct.scores, result.scores)
            assert direct.metrics == result.metrics

    def test_serial_and_parallel_sweeps_identical(self):
        kwargs = dict(seeds=(0, 1), scale=SCALE)
        serial = sweep_matrix(("Slips",), ("BoT-IoT", "Mirai"),
                              engine=ExperimentEngine(jobs=1), **kwargs)
        parallel = sweep_matrix(("Slips",), ("BoT-IoT", "Mirai"),
                                engine=ExperimentEngine(jobs=2), **kwargs)
        assert serial.cells.keys() == parallel.cells.keys()
        for key in serial.cells:
            for a, b in zip(serial.cells[key].results,
                            parallel.cells[key].results):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.metrics == b.metrics
                assert a.threshold == b.threshold

    def test_warm_rerun_served_from_cache(self, tmp_path):
        kwargs = dict(seeds=(0, 1, 2), scale=SCALE)
        cold_engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        cold = sweep_matrix(("Slips",), ("Mirai",), engine=cold_engine,
                            **kwargs)
        warm_engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        warm = sweep_matrix(("Slips",), ("Mirai",), engine=warm_engine,
                            **kwargs)
        telemetry = warm_engine.last_telemetry
        # Every cell of the warm sweep is a whole-cell cache hit.
        assert telemetry.result_cache_hits == len(telemetry.cells) == 3
        for key in cold.cells:
            for a, b in zip(cold.cells[key].results, warm.cells[key].results):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.metrics == b.metrics


class TestSweepResultAverages:
    def test_average_is_within_seed_then_across_seeds(self):
        sweep = sweep_matrix(
            ("Slips",), ("BoT-IoT", "Mirai"), seeds=(0, 1), scale=SCALE,
            engine=ExperimentEngine(jobs=1),
        )
        averages = sweep.average_for("Slips")
        for metric in ("accuracy", "precision", "recall", "f1"):
            per_seed = [
                np.mean([
                    getattr(sweep.cell("Slips", d).results[i].metrics, metric)
                    for d in ("BoT-IoT", "Mirai")
                ])
                for i in range(2)
            ]
            assert averages[metric].mean == pytest.approx(np.mean(per_seed))
            assert averages[metric].std == pytest.approx(np.std(per_seed))

    def test_row_follows_dataset_order(self):
        sweep = sweep_matrix(
            ("Slips",), ("BoT-IoT", "Mirai"), seeds=(0,), scale=SCALE,
            engine=ExperimentEngine(jobs=1),
        )
        assert [c.dataset_name for c in sweep.row("Slips")] == [
            "BoT-IoT", "Mirai",
        ]


class TestSweepConfigs:
    def test_ad_hoc_bases_grouped_by_cell(self):
        bases = [
            ExperimentConfig(**CHEAP),
            ExperimentConfig(**{**CHEAP, "dataset_name": "BoT-IoT"}),
        ]
        cells = sweep_configs(bases, seeds=(0, 1),
                              engine=ExperimentEngine(jobs=1))
        assert set(cells) == {("Slips", "Mirai"), ("Slips", "BoT-IoT")}
        assert cells[("Slips", "Mirai")].seeds == (0, 1)


class TestRenderTable4Sweep:
    def test_renders_plus_minus_and_average(self):
        sweep = sweep_matrix(
            ("Slips",), ("Mirai",), seeds=(0, 1), scale=SCALE,
            engine=ExperimentEngine(jobs=1),
        )
        text = render_table4_sweep(sweep)
        assert "IDS: Slips" in text
        assert "±" in text
        assert "Average:" in text
        assert "seeds [0,1]" in text


class TestRobustnessThroughEngine:
    def test_stability_report_matches_direct_runs(self):
        engine = ExperimentEngine(jobs=1)
        report = stability_report("Slips", dataset_names=("Mirai",),
                                  seeds=(0, 1), scale=SCALE, engine=engine)
        assert len(report) == 1
        base = EXPERIMENT_MATRIX[("Slips", "Mirai")]
        f1s = [
            run_experiment(replace(base, seed=s, scale=SCALE)).metrics.f1
            for s in (0, 1)
        ]
        assert report[0].f1.mean == pytest.approx(np.mean(f1s))
        assert report[0].f1.std == pytest.approx(np.std(f1s))


class TestExperimentKinds:
    def test_registered_kind_runs_through_engine(self):
        def fake_kind(config, provider):
            from repro.core.experiment import ExperimentResult

            value = config.experiment_params["value"]
            return ExperimentResult(
                config=config,
                metrics=MetricReport(value, value, value, value),
                threshold=0.0,
                scores=np.empty(0),
                y_true=np.empty(0, dtype=int),
                notes={},
                runtime_seconds=0.0,
            )

        register_experiment_kind("unit-fake", fake_kind)
        config = ExperimentConfig(
            ids_name="Fake", dataset_name="Mirai", scale=SCALE,
            experiment="unit-fake", experiment_params={"value": 0.25},
        )
        [result] = ExperimentEngine(jobs=1).run_configs([config])
        assert result.metrics.f1 == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment kind"):
            resolve_experiment_kind("no-such-kind")

    def test_builtin_name_cannot_be_rebound(self):
        with pytest.raises(ValueError, match="built-in"):
            register_experiment_kind("table4", lambda c, p: None)

    def test_kind_and_params_distinguish_cache_keys(self):
        from repro.runner import config_key

        base = ExperimentConfig(ids_name="Fake", dataset_name="Mirai")
        keys = {
            config_key(base),
            config_key(replace(base, experiment="unit-fake")),
            config_key(replace(base, experiment_params={"value": 1})),
            config_key(replace(base, experiment_params={"value": 2})),
        }
        assert len(keys) == 4


class TestSweepScaleGrid:
    def test_one_sweep_result_per_scale(self):
        from repro.runner import sweep_scale_grid

        engine = ExperimentEngine()
        sweeps = sweep_scale_grid(
            ("Slips",), ("Mirai",), seeds=(0, 1), scales=(0.03, 0.05),
            engine=engine,
        )
        assert [s.scale for s in sweeps] == [0.03, 0.05]
        for sweep in sweeps:
            assert sweep.seeds == (0, 1)
            cell = sweep.cell("Slips", "Mirai")
            assert cell.seeds == (0, 1)
            # Every per-seed result really ran at this sweep's scale.
            assert all(r.config.scale == sweep.scale for r in cell.results)

    def test_grid_cells_bit_identical_to_plain_sweep(self):
        from repro.runner import sweep_scale_grid

        grid = sweep_scale_grid(
            ("Slips",), ("Mirai",), seeds=(0, 1), scales=(0.05,),
            engine=ExperimentEngine(),
        )
        plain = sweep_matrix(
            ("Slips",), ("Mirai",), seeds=(0, 1), scale=0.05,
            engine=ExperimentEngine(),
        )
        for (grid_cell, plain_cell) in zip(
            grid[0].cells.values(), plain.cells.values()
        ):
            for a, b in zip(grid_cell.results, plain_cell.results):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.metrics == b.metrics

    def test_rejects_empty_scales(self):
        from repro.runner import sweep_scale_grid

        with pytest.raises(ValueError, match="scale"):
            sweep_scale_grid(("Slips",), ("Mirai",), seeds=(0,), scales=())
