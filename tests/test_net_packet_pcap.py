"""Tests for the Packet model and pcap file I/O."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.arp import ARPHeader
from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.net.ipv4 import IPv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.icmp import ICMPHeader
from repro.net.packet import Packet
from repro.net.pcap import PcapFormatError, PcapReader, read_pcap, write_pcap
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader

from tests.conftest import make_tcp_packet, make_udp_packet


class TestPacketAccessors:
    def test_tcp_accessors(self):
        packet = make_tcp_packet(sport=1111, dport=80)
        assert packet.src_ip == "10.0.0.1"
        assert packet.dst_ip == "10.0.0.2"
        assert packet.src_port == 1111
        assert packet.dst_port == 80
        assert packet.protocol_name == "tcp"
        assert packet.is_tcp and not packet.is_udp

    def test_udp_accessors(self):
        packet = make_udp_packet()
        assert packet.protocol_name == "udp"
        assert packet.is_udp

    def test_icmp_has_no_ports(self):
        packet = Packet(
            ip=IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2", protocol=PROTO_ICMP),
            transport=ICMPHeader(),
        )
        assert packet.src_port is None
        assert packet.protocol_name == "icmp"

    def test_arp_accessors(self):
        packet = Packet(
            ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
            arp=ARPHeader(sender_ip="10.0.0.5", target_ip="10.0.0.1"),
        )
        assert packet.src_ip == "10.0.0.5"
        assert packet.protocol_name == "arp"

    def test_wire_len_matches_serialization(self):
        packet = make_tcp_packet(payload=b"hello world")
        assert packet.wire_len == len(packet.to_bytes())


class TestPacketSerialization:
    @pytest.mark.parametrize("proto,transport", [
        (PROTO_TCP, TCPHeader(src_port=1, dst_port=2, flags=TCPFlags.SYN)),
        (PROTO_UDP, UDPHeader(src_port=3, dst_port=4)),
        (PROTO_ICMP, ICMPHeader()),
    ])
    def test_roundtrip(self, proto, transport):
        packet = Packet(
            timestamp=1.5,
            ether=EthernetHeader(),
            ip=IPv4Header(src_ip="10.1.1.1", dst_ip="10.2.2.2", protocol=proto),
            transport=transport,
            payload=b"xyz",
        )
        parsed = Packet.from_bytes(packet.to_bytes(), timestamp=1.5)
        assert parsed.src_ip == "10.1.1.1"
        assert type(parsed.transport) is type(transport)
        assert parsed.payload == b"xyz"

    def test_labels_do_not_survive_serialization(self):
        packet = make_tcp_packet(label=1)
        packet.attack_type = "ddos"
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.label == 0
        assert parsed.attack_type == ""

    def test_serialize_without_layers_raises(self):
        with pytest.raises(ValueError):
            Packet().to_bytes()

    def test_unknown_ip_protocol_keeps_payload(self):
        raw = bytearray(make_tcp_packet(payload=b"zz").to_bytes())
        raw[14 + 9] = 99  # ip protocol field
        # The IP checksum no longer matches, but parsing is tolerant.
        parsed = Packet.from_bytes(bytes(raw))
        assert parsed.transport is None
        assert parsed.ip is not None and parsed.ip.protocol == 99


class TestPcap:
    def test_roundtrip(self, tmp_path):
        packets = [make_tcp_packet(ts=float(i) + 0.000250, payload=b"p" * i)
                   for i in range(10)]
        path = tmp_path / "capture.pcap"
        assert write_pcap(path, packets) == 10
        loaded = read_pcap(path)
        assert len(loaded) == 10
        for original, copy in zip(packets, loaded):
            assert abs(copy.timestamp - original.timestamp) < 1e-6
            assert copy.src_ip == original.src_ip
            assert copy.payload == original.payload
            assert copy.meta["orig_len"] == original.wire_len

    def test_snaplen_truncation_preserves_orig_len(self, tmp_path):
        from repro.net.pcap import PcapWriter

        packet = make_tcp_packet(payload=b"x" * 500)
        path = tmp_path / "snap.pcap"
        with PcapWriter(path, snaplen=100) as writer:
            writer.write(packet)
        with open(path, "rb") as fh:
            fh.seek(24)
            _, _, incl, orig = struct.unpack("<IIII", fh.read(16))
        assert incl == 100
        assert orig == packet.wire_len

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError, match="magic"):
            list(PcapReader(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapFormatError, match="too short"):
            list(PcapReader(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [make_tcp_packet()])
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_unsupported_linktype(self, tmp_path):
        path = tmp_path / "linktype.pcap"
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        path.write_bytes(header)
        with pytest.raises(PcapFormatError, match="linktype"):
            list(PcapReader(path))

    @given(st.floats(min_value=0, max_value=2**31, allow_nan=False))
    def test_timestamp_precision_property(self, ts):
        """Microsecond rounding error is bounded through a write cycle."""
        from repro.net.pcap import PcapWriter
        import io

        packet = make_tcp_packet(ts=ts)
        ts_sec = int(packet.timestamp)
        ts_usec = int(round((packet.timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        restored = ts_sec + ts_usec / 1_000_000
        assert abs(restored - ts) <= 5e-7 * max(1.0, ts / 2**20)
