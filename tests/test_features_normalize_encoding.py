"""Tests for online scalers and the flow-vector encoder."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.features.encoding import FlowVectorEncoder
from repro.features.normalize import OnlineMinMaxScaler, ZScoreScaler


class TestOnlineMinMax:
    def test_learns_extrema(self):
        scaler = OnlineMinMaxScaler(2)
        scaler.partial_fit(np.array([0.0, 10.0]))
        scaler.partial_fit(np.array([4.0, 30.0]))
        out = scaler.transform(np.array([2.0, 20.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_clip_behaviour(self):
        scaler = OnlineMinMaxScaler(1)
        scaler.partial_fit(np.array([0.0]))
        scaler.partial_fit(np.array([1.0]))
        assert scaler.transform(np.array([5.0]))[0] == 1.0

    def test_unclipped_extrapolates(self):
        scaler = OnlineMinMaxScaler(1, clip=False)
        scaler.partial_fit(np.array([0.0]))
        scaler.partial_fit(np.array([1.0]))
        assert scaler.transform(np.array([5.0]))[0] == pytest.approx(5.0)

    def test_freeze_stops_learning(self):
        scaler = OnlineMinMaxScaler(1)
        scaler.partial_fit(np.array([0.0]))
        scaler.partial_fit(np.array([1.0]))
        scaler.freeze()
        scaler.partial_fit(np.array([100.0]))
        assert scaler.max[0] == 1.0

    def test_constant_dimension_maps_to_zero(self):
        scaler = OnlineMinMaxScaler(1)
        scaler.partial_fit(np.array([3.0]))
        scaler.partial_fit(np.array([3.0]))
        assert scaler.transform(np.array([3.0]))[0] == 0.0

    def test_shape_validation(self):
        scaler = OnlineMinMaxScaler(3)
        with pytest.raises(ValueError):
            scaler.partial_fit(np.zeros(2))
        with pytest.raises(ValueError):
            scaler.partial_fit(np.zeros((4, 2)))

    def test_batch_partial_fit_matches_sequential(self):
        rng = np.random.default_rng(5)
        rows = rng.normal(size=(57, 4)) * rng.integers(1, 50, size=4)
        sequential = OnlineMinMaxScaler(4)
        for row in rows:
            sequential.partial_fit(row)
        batched = OnlineMinMaxScaler(4)
        batched.partial_fit(rows[:20])
        batched.partial_fit(rows[20:])
        assert np.array_equal(batched.min, sequential.min)
        assert np.array_equal(batched.max, sequential.max)
        batched.partial_fit(rows[:0])  # empty batch is a no-op
        assert np.array_equal(batched.min, sequential.min)

    @pytest.mark.parametrize("clip", (True, False))
    def test_batch_transform_matches_per_row(self, clip):
        rng = np.random.default_rng(6)
        scaler = OnlineMinMaxScaler(5, clip=clip)
        scaler.partial_fit(rng.normal(size=(40, 5)))
        rows = rng.normal(size=(23, 5)) * 3.0
        batch = scaler.transform(rows)
        for row, expected in zip(rows, batch):
            assert np.array_equal(scaler.transform(row), expected)

    def test_fit_transform_rejects_batches(self):
        # Whole-batch fit-then-transform would leak future extrema into
        # earlier rows; the online call is per-row by contract.
        scaler = OnlineMinMaxScaler(3)
        with pytest.raises(ValueError, match="online"):
            scaler.fit_transform(np.zeros((2, 3)))

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            OnlineMinMaxScaler(0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_clipped_output_in_unit_interval_property(self, values):
        scaler = OnlineMinMaxScaler(1)
        for v in values:
            scaler.partial_fit(np.array([v]))
        for v in values:
            out = scaler.transform(np.array([v]))
            assert 0.0 - 1e-12 <= out[0] <= 1.0 + 1e-12


class TestZScore:
    def test_standardises(self):
        data = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        out = ZScoreScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_safe(self):
        data = np.array([[1.0], [1.0]])
        out = ZScoreScaler().fit_transform(data)
        assert np.isfinite(out).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ZScoreScaler().transform(np.zeros((1, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            ZScoreScaler().fit(np.empty((0, 3)))


class TestFlowVectorEncoder:
    def test_order_and_values(self):
        encoder = FlowVectorEncoder(["a", "b"], log_scale=False)
        row = encoder.encode_one({"b": 2.0, "a": 1.0})
        np.testing.assert_allclose(row, [1.0, 2.0])

    def test_missing_features_zero_filled(self):
        encoder = FlowVectorEncoder(["a", "b"], available=["a"], log_scale=False)
        row = encoder.encode_one({"a": 1.0, "b": 99.0})
        np.testing.assert_allclose(row, [1.0, 0.0])
        assert encoder.missing_features == ("b",)

    def test_log_scaling_applies_to_magnitudes(self):
        encoder = FlowVectorEncoder(["sbytes", "dur"])
        row = encoder.encode_one({"sbytes": 100.0, "dur": 100.0})
        assert row[0] == pytest.approx(np.log1p(100.0))
        assert row[1] == pytest.approx(100.0)  # "dur" is not magnitude-like

    def test_non_finite_values_sanitised(self):
        encoder = FlowVectorEncoder(["x"], log_scale=False)
        row = encoder.encode_one({"x": float("inf")})
        assert row[0] == 0.0

    def test_encode_matrix(self):
        encoder = FlowVectorEncoder(["a"], log_scale=False)
        matrix = encoder.encode([{"a": 1.0}, {"a": 2.0}])
        assert matrix.shape == (2, 1)

    def test_encode_empty(self):
        encoder = FlowVectorEncoder(["a"])
        assert encoder.encode([]).shape == (0, 1)

    def test_rejects_empty_schema(self):
        with pytest.raises(ValueError):
            FlowVectorEncoder([])
