"""The sharded streaming engine: parity, transport, lifecycle, errors.

Crash-resume and backpressure live in ``test_stream_faultinject.py``;
this module covers the engine's steady-state contract.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.stream.detector import build_streaming_detector
from repro.stream.service import stream_capture
from repro.stream.sharded import (
    FaultInjection,
    WirePacket,
    _encode_packet,
    coverage_digest,
    stream_capture_sharded,
)
from repro.stream.sources import ListSource

from tests.conftest import make_tcp_packet
from tests.faultinject import (
    ChannelMeanDetector,
    conversation_packets,
    run_sharded,
)


class ExplodingDetector(ChannelMeanDetector):
    """Raises once its packet counter crosses the trip point."""

    def __init__(self, trip_at: int = 30):
        super().__init__()
        self.trip_at = trip_at

    def process(self, packet):
        if self.items_scored >= self.trip_at:
            raise RuntimeError("detector tripped on purpose")
        return super().process(packet)


class TestWireTransport:
    def test_wire_packet_carries_every_field_netstat_reads(self):
        packet = make_tcp_packet(ts=4.2, src="10.9.0.1", dst="10.9.0.2",
                                 sport=4444, dport=80, payload=b"z" * 33,
                                 label=1, attack_type="probe")
        wire = WirePacket(*_encode_packet(packet))
        assert wire.timestamp == packet.timestamp
        assert wire.wire_len == packet.wire_len
        assert wire.ether.src_mac == packet.ether.src_mac
        assert wire.src_ip == packet.src_ip
        assert wire.dst_ip == packet.dst_ip
        assert wire.src_port == packet.src_port
        assert wire.dst_port == packet.dst_port
        assert wire.label == 1
        assert wire.attack_type == "probe"

    def test_wire_packet_without_ethernet_exposes_no_ether(self):
        row = (0.0, None, "1.2.3.4", "5.6.7.8", 1, 2, 60, 0, "")
        assert WirePacket(*row).ether is None

    def test_wire_packet_pickles(self):
        wire = WirePacket(*_encode_packet(make_tcp_packet(ts=1.0)))
        clone = pickle.loads(pickle.dumps(wire))
        assert clone.timestamp == wire.timestamp
        assert clone.src_ip == wire.src_ip
        assert clone.wire_len == wire.wire_len


class TestShardedParity:
    def test_single_worker_is_bit_identical_to_in_process(self):
        packets = conversation_packets()
        base = stream_capture(
            ListSource(packets), ChannelMeanDetector(),
            warmup_packets=64, window_seconds=5.0,
        )
        sharded = run_sharded(packets, workers=1)
        assert np.array_equal(base.scores, sharded.scores)
        assert base.threshold == sharded.threshold
        assert base.alerts == sharded.alerts

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_channel_keyed_detector_full_parity_at_any_count(
            self, workers):
        # ChannelMeanDetector's state is keyed by the shard key, so
        # sharding is invisible to it: scores, threshold, windows and
        # episodes must match the single-process run bit for bit.
        packets = conversation_packets()
        base = stream_capture(
            ListSource(packets), ChannelMeanDetector(),
            warmup_packets=64, window_seconds=5.0,
        )
        sharded = run_sharded(packets, workers=workers)
        assert np.array_equal(base.scores, sharded.scores)
        assert base.alerts == sharded.alerts
        assert sharded.notes["workers_n"] == workers

    def test_kitsune_coverage_invariant_across_counts(self):
        # The real IDS's source-keyed features may shift across shard
        # layouts (the documented tolerance) but coverage may not.
        from repro.stream.sources import DatasetSource

        def run(workers):
            return stream_capture_sharded(
                DatasetSource("Mirai", seed=0, scale=0.02),
                build_streaming_detector("kitsune", seed=0,
                                         batch_size=64,
                                         warmup_packets=400),
                workers=workers, warmup_packets=400,
                window_seconds=5.0,
            )

        one, two = run(1), run(2)
        assert one.n_scored == two.n_scored
        assert (one.notes["coverage_digest"]
                == two.notes["coverage_digest"])

    def test_coverage_digest_is_order_independent_but_multiset_exact(self):
        packets = conversation_packets(channels=3,
                                       packets_per_channel=20)
        report = run_sharded(packets, workers=2, warmup_packets=10)
        emitted_like = [
            type("S", (), {"timestamp": float(p.timestamp),
                           "label": p.label,
                           "attack_type": p.attack_type})()
            for p in packets[10:]
        ]
        assert report.notes["coverage_digest"] == coverage_digest(
            emitted_like)
        assert report.notes["coverage_digest"] != coverage_digest(
            emitted_like[:-1])


class TestLifecycleAndTelemetry:
    def test_zero_warmup_streams_every_packet(self):
        packets = conversation_packets(channels=2,
                                       packets_per_channel=20)
        report = run_sharded(packets, workers=2, warmup_packets=0)
        assert report.n_warmup == 0
        assert report.n_scored == len(packets)

    def test_telemetry_shape_and_checkpoint_cadence(self):
        packets = conversation_packets()
        report = run_sharded(packets, workers=2, checkpoint_every=40)
        rows = report.notes["workers"]
        assert [row["worker"] for row in rows] == [0, 1]
        for row in rows:
            assert row["packets"] > 0
            assert row["pps"] > 0
            assert row["checkpoints_written"] >= 1
            assert row["checkpoint_age_packets"] < 40 + 16  # + chunk
            assert row["restarts"] == 0
        assert sum(row["packets"] for row in rows) == report.n_scored

    def test_explicit_checkpoint_dir_is_kept(self, tmp_path):
        packets = conversation_packets(channels=2,
                                       packets_per_channel=30)
        run_sharded(packets, workers=2, checkpoint_every=10,
                    checkpoint_dir=tmp_path)
        kept = sorted(p.name for p in tmp_path.iterdir())
        assert kept, "explicit checkpoint dir was emptied"
        assert all(name.endswith(".ckpt") for name in kept)

    def test_pacing_stretches_replay_to_capture_clock(self):
        # 40 packets spaced 25 ms apart ≈ 1 s of capture; pace=4
        # replays it in about a quarter second instead of instantly.
        packets = [
            make_tcp_packet(ts=i * 0.025, src="10.0.0.1",
                            dst="10.0.0.2")
            for i in range(40)
        ]
        report = run_sharded(packets, workers=1, warmup_packets=0,
                             pace=4.0)
        assert report.stream_seconds >= 0.2
        assert report.notes["pace"] == 4.0


class TestErrors:
    def test_worker_exception_propagates_with_traceback(self):
        packets = conversation_packets(channels=2,
                                       packets_per_channel=40)
        with pytest.raises(RuntimeError, match="tripped on purpose"):
            stream_capture_sharded(
                ListSource(packets), ExplodingDetector(trip_at=10),
                workers=2, warmup_packets=0, window_seconds=5.0,
                chunk_packets=8,
            )

    def test_worker_exception_leaves_no_live_children(self):
        packets = conversation_packets(channels=2,
                                       packets_per_channel=40)
        with pytest.raises(RuntimeError):
            stream_capture_sharded(
                ListSource(packets), ExplodingDetector(trip_at=10),
                workers=2, warmup_packets=0, window_seconds=5.0,
                chunk_packets=8,
            )
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
            assert child.exitcode is not None, "leaked worker process"

    def test_flow_detectors_are_rejected(self):
        detector = build_streaming_detector("dnn", seed=0,
                                            batch_size=32)
        with pytest.raises(ValueError, match="packet-level"):
            stream_capture_sharded(
                ListSource(conversation_packets()), detector,
                workers=2, warmup_packets=10,
            )

    def test_unlabelled_source_requires_threshold(self):
        source = ListSource(conversation_packets(), labelled=False)
        with pytest.raises(ValueError, match="explicit threshold"):
            stream_capture_sharded(
                source, ChannelMeanDetector(), workers=2,
                warmup_packets=10,
            )

    def test_fault_target_must_exist(self):
        with pytest.raises(ValueError, match="fault targets worker"):
            run_sharded(conversation_packets(), workers=2,
                        fault=FaultInjection(worker=5, at_packets=1))

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultInjection(worker=0, at_packets=1, action="explode")
        with pytest.raises(ValueError, match="at_packets"):
            FaultInjection(worker=0, at_packets=0)

    def test_source_failure_mid_stream_terminates_workers(self):
        class PoisonedSource(ListSource):
            def __iter__(self):
                for i, packet in enumerate(super().__iter__()):
                    if i >= 100:
                        raise OSError("capture interface vanished")
                    yield packet

        with pytest.raises(OSError, match="interface vanished"):
            stream_capture_sharded(
                PoisonedSource(conversation_packets()),
                ChannelMeanDetector(), workers=2, warmup_packets=10,
                chunk_packets=8, window_seconds=5.0,
            )
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
            assert child.exitcode is not None, "leaked worker process"
