"""Tests for the stage-by-stage packet-path profiler.

Covers the ``compare_scalar=False`` path (no scalar reference timing,
no speedup claim) and the rendered stage-share arithmetic (shares are
fractions of total stage time and sum to ~100%).
"""

from __future__ import annotations

import re

import pytest

from repro.core.profiling import (
    PacketPathProfile,
    StageTiming,
    profile_packet_path,
)

EXPECTED_STAGES = [
    "ingest",
    "netstat",
    "kitnet-train",
    "kitnet-train-batched",
    "kitnet",
    "kitnet-batch",
]


@pytest.fixture(scope="module")
def profile() -> PacketPathProfile:
    return profile_packet_path(
        "Mirai", seed=0, scale=0.02, max_packets=400,
        compare_scalar=False,
    )


class TestCompareScalarOff:
    def test_no_scalar_timing_or_speedup(self, profile):
        assert profile.scalar_netstat_seconds is None
        assert profile.netstat_speedup is None
        assert profile.to_dict()["netstat_speedup"] is None
        assert "speedup vs scalar" not in profile.render()

    def test_stages_and_parity_still_present(self, profile):
        assert [stage.stage for stage in profile.stages] == EXPECTED_STAGES
        assert profile.packets == 400
        for stage in profile.stages:
            assert stage.seconds >= 0
            assert stage.packets > 0
        assert profile.kitnet_batch_parity is True

    def test_default_ingest_backend_recorded(self, profile):
        assert profile.ingest_backend == "packet-objects"
        assert profile.to_dict()["ingest_backend"] == "packet-objects"
        assert "ingest=packet-objects" in profile.render()


class TestColumnarIngest:
    def test_columnar_profile_same_shape(self):
        profile = profile_packet_path(
            "Mirai", seed=0, scale=0.02, max_packets=400,
            compare_scalar=False, ingest_backend="columnar-mmap",
        )
        assert profile.ingest_backend == "columnar-mmap"
        assert [stage.stage for stage in profile.stages] == EXPECTED_STAGES
        assert profile.packets == 400
        assert profile.kitnet_batch_parity is True
        assert "ingest=columnar-mmap" in profile.render()

    def test_unknown_ingest_backend_rejected(self):
        with pytest.raises(KeyError):
            profile_packet_path(
                "Mirai", seed=0, scale=0.02, max_packets=50,
                compare_scalar=False, ingest_backend="not-a-backend",
            )


class TestStageShares:
    def test_rendered_shares_sum_to_100(self, profile):
        rendered = profile.render()
        shares = []
        for line in rendered.splitlines():
            match = re.match(
                r"\s+(\S+)\s+[\d.]+\s+[\d.,]+\s+[\d.,]+\s+([\d.]+)%$",
                line,
            )
            if match and match.group(1) != "total":
                shares.append(float(match.group(2)))
        assert len(shares) == len(EXPECTED_STAGES)
        assert sum(shares) == pytest.approx(100.0, abs=0.5)
        assert "100.0%" in rendered  # the total row

    def test_share_fractions_match_stage_seconds(self, profile):
        total = profile.total_seconds
        assert total == pytest.approx(
            sum(stage.seconds for stage in profile.stages)
        )
        for stage in profile.stages:
            assert 0.0 <= stage.seconds / total <= 1.0

    def test_zero_total_renders_without_dividing(self):
        profile = PacketPathProfile(
            dataset="x", seed=0, scale=0.1, packets=0,
            engine="vector", kernel="numpy",
            stages=(StageTiming("ingest", 0.0, 0),),
        )
        rendered = profile.render()
        assert "0.0%" in rendered


class TestStageTimingDerived:
    def test_per_packet_and_pps(self):
        timing = StageTiming("ingest", seconds=2.0, packets=1000)
        assert timing.per_packet_us == pytest.approx(2000.0)
        assert timing.packets_per_second == pytest.approx(500.0)

    def test_zero_packets_and_zero_seconds(self):
        assert StageTiming("x", 1.0, 0).per_packet_us == 0.0
        assert StageTiming("x", 0.0, 10).packets_per_second == 0.0
