"""Tests for the Table I registry and selection criteria."""

from repro.core.selection import (
    evaluate_record,
    run_selection,
    selected_names,
)
from repro.ids.registry import INVESTIGATED_IDS, evaluated_ids_factories


class TestRegistry:
    def test_fifteen_systems_investigated(self):
        assert len(INVESTIGATED_IDS) == 15

    def test_four_used(self):
        used = [r for r in INVESTIGATED_IDS if r.used]
        assert {r.name for r in used} == {
            "Deep Neural Network (DNN)", "Kitsune", "HELAD",
            "StratosphereIPS (Slips)",
        }

    def test_excluded_have_issues(self):
        for record in INVESTIGATED_IDS:
            if not record.used:
                assert record.issue, record.name

    def test_factories_cover_table4_rows(self):
        assert set(evaluated_ids_factories()) == {
            "Kitsune", "HELAD", "DNN", "Slips"
        }

    def test_status_property(self):
        used = next(r for r in INVESTIGATED_IDS if r.used)
        assert used.status == "Used in Paper"


class TestSelection:
    def test_selected_match_used_flags(self):
        names = selected_names()
        expected = {r.name for r in INVESTIGATED_IDS if r.used}
        assert set(names) == expected

    def test_every_record_evaluated(self):
        outcomes = run_selection()
        assert len(outcomes) == len(INVESTIGATED_IDS)

    def test_usability_is_dominant_failure(self):
        """The paper's observation: most exclusions are usability."""
        outcomes = [o for o in run_selection() if not o.selected]
        usability = [o for o in outcomes if o.failed_criterion == "usability"]
        assert len(usability) >= len(outcomes) / 2

    def test_suricata_fails_ml_documentation(self):
        record = next(r for r in INVESTIGATED_IDS if r.name == "Suricata")
        outcome = evaluate_record(record)
        assert not outcome.selected
        assert outcome.failed_criterion == "documentation"

    def test_automl_fails_code_availability(self):
        record = next(r for r in INVESTIGATED_IDS if r.name == "AutoML")
        outcome = evaluate_record(record)
        assert outcome.failed_criterion == "code-availability"

    def test_xnids_fails_usability(self):
        record = next(r for r in INVESTIGATED_IDS if r.name == "xNIDS")
        outcome = evaluate_record(record)
        assert not outcome.selected
