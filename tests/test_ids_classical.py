"""Tests for the classical-ML baseline IDSs."""

import numpy as np
import pytest

from repro.ids.classical import (
    DecisionTreeIDS,
    GaussianNBIDS,
    KNNIDS,
    LogisticRegressionIDS,
    RandomForestIDS,
)
from repro.utils.rng import SeededRNG

ALL_CLASSIFIERS = [
    LogisticRegressionIDS,
    GaussianNBIDS,
    KNNIDS,
    DecisionTreeIDS,
    RandomForestIDS,
]


def _blobs(seed=0, n=150, d=8, gap=2.5):
    rng = SeededRNG(seed, "blobs")
    x = np.vstack([rng.normal(0, 1, (n, d)), rng.normal(gap, 1, (n, d))])
    y = np.array([0] * n + [1] * n)
    order = rng.permutation(2 * n)
    return x[order], y[order]


@pytest.mark.parametrize("cls", ALL_CLASSIFIERS)
class TestCommonBehaviour:
    def test_learns_separable_blobs(self, cls):
        x, y = _blobs()
        ids = cls()
        ids.fit([], x, y)
        scores = ids.anomaly_scores([], x)
        predictions = (scores >= 0.5).astype(int)
        assert (predictions == y).mean() > 0.9, cls.name

    def test_scores_in_unit_interval(self, cls):
        x, y = _blobs(seed=1, n=60)
        ids = cls()
        ids.fit([], x, y)
        scores = ids.anomaly_scores([], x)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_requires_labels(self, cls):
        x, _ = _blobs(n=20)
        with pytest.raises(ValueError):
            cls().fit([], x, None)

    def test_score_before_fit_raises(self, cls):
        x, _ = _blobs(n=10)
        with pytest.raises(RuntimeError):
            cls().anomaly_scores([], x)


class TestSpecifics:
    def test_knn_subsamples_large_training_sets(self):
        x, y = _blobs(n=300)
        ids = KNNIDS(k=3, max_train=100)
        ids.fit([], x, y)
        assert ids._x is not None and ids._x.shape[0] == 100

    def test_knn_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNIDS(k=0)

    def test_nb_single_class_training(self):
        x = np.random.default_rng(0).normal(size=(20, 4))
        y = np.ones(20, dtype=int)
        ids = GaussianNBIDS()
        ids.fit([], x, y)
        assert np.all(ids.anomaly_scores([], x) == 1.0)

    def test_tree_depth_limits_structure(self):
        x, y = _blobs(n=100)
        shallow = DecisionTreeIDS(max_depth=1)
        shallow.fit([], x, y)
        deep = DecisionTreeIDS(max_depth=8)
        deep.fit([], x, y)
        # Both learn something; the deep tree is at least as accurate.
        s_acc = ((shallow.anomaly_scores([], x) >= 0.5) == y).mean()
        d_acc = ((deep.anomaly_scores([], x) >= 0.5) == y).mean()
        assert d_acc >= s_acc

    def test_forest_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RandomForestIDS(trees=0)

    def test_forest_is_deterministic_per_seed(self):
        x, y = _blobs(n=80)
        a = RandomForestIDS(trees=5, seed=3)
        a.fit([], x, y)
        b = RandomForestIDS(trees=5, seed=3)
        b.fit([], x, y)
        np.testing.assert_array_equal(
            a.anomaly_scores([], x), b.anomaly_scores([], x)
        )
