"""Tests for text/markdown table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.tables import TextTable, format_float, render_markdown_table


class TestFormatFloat:
    def test_four_digits_default(self):
        assert format_float(0.85374) == "0.8537"

    def test_custom_digits(self):
        assert format_float(0.5, digits=2) == "0.50"

    def test_nan_renders_na(self):
        assert format_float(float("nan")) == "n/a"


class TestMarkdownTable:
    def test_structure(self):
        out = render_markdown_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4


class TestTextTable:
    def test_rejects_empty_header(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_rejects_mismatched_row(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="expected 2"):
            table.add_row(["only-one"])

    def test_column_width_adapts(self):
        table = TextTable(["h"])
        table.add_row(["a-much-longer-cell"])
        lines = table.render().splitlines()
        assert lines[1] == "-" * len("a-much-longer-cell")

    def test_renders_all_rows(self):
        table = TextTable(["x", "y"])
        table.add_row([1, 2])
        table.add_row([3, 4])
        out = table.render()
        assert "1" in out and "4" in out
        assert len(out.splitlines()) == 4

    @given(
        st.lists(
            st.lists(
                st.text(alphabet="abc123", min_size=1, max_size=8),
                min_size=2,
                max_size=2,
            ),
            max_size=10,
        )
    )
    def test_line_count_property(self, rows):
        table = TextTable(["col1", "col2"])
        for row in rows:
            table.add_row(row)
        assert len(table.render().splitlines()) == 2 + len(rows)
