"""Streaming == batch: the subsystem's defining contract.

For the same :class:`ExperimentConfig`, the streaming session's
per-item scores must be *bit-identical* to the batch pipeline's — all
four evaluated IDSs, across micro-batch sizes. Also covers the live
(capture) path's detector-level agreement with a single batch call.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest

from repro.core.experiment import EXPERIMENT_MATRIX, run_experiment
from repro.stream.service import stream_experiment

SCALE = 0.05


@lru_cache(maxsize=8)
def _dataset(name: str, seed: int, scale: float):
    from repro.datasets.registry import generate_dataset_uncached

    return generate_dataset_uncached(name, seed=seed, scale=scale)


def _provider(name, *, seed=0, scale=1.0):
    """Session-cached datasets so batch and stream share generation."""
    return _dataset(name, seed, scale)


def _config(ids_name, dataset_name, seed=0):
    return replace(
        EXPERIMENT_MATRIX[(ids_name, dataset_name)], seed=seed, scale=SCALE
    )


# Five IDS x dataset cells: both packet IDSs, both flow IDSs, and a
# second dataset for the acceptance cell (Kitsune).
PARITY_CELLS = (
    ("Kitsune", "Mirai"),
    ("Kitsune", "UNSW-NB15"),
    ("HELAD", "Mirai"),
    ("DNN", "Mirai"),
    ("Slips", "Mirai"),
)


@pytest.mark.parametrize("ids_name,dataset_name", PARITY_CELLS)
def test_stream_scores_bit_identical_to_batch(ids_name, dataset_name):
    config = _config(ids_name, dataset_name)
    batch = run_experiment(config, dataset_provider=_provider)
    report = stream_experiment(
        config, batch_size=64, window_seconds=30.0, dataset_provider=_provider
    )
    assert report.n_scored == len(batch.scores)
    np.testing.assert_array_equal(report.scores, batch.scores)
    # Same scores + same standardized procedure => same threshold and
    # identical Table IV metrics.
    assert report.threshold == batch.threshold
    assert report.metrics == batch.metrics
    np.testing.assert_array_equal(report.y_true, batch.y_true)


def test_micro_batch_size_is_a_pure_throughput_knob():
    """Scores cannot depend on how the stream was chunked."""
    config = _config("Kitsune", "Mirai")
    reference = None
    for batch_size in (1, 7, 256, 100_000):
        report = stream_experiment(
            config, batch_size=batch_size, dataset_provider=_provider
        )
        if reference is None:
            reference = report.scores
        else:
            np.testing.assert_array_equal(report.scores, reference)


def test_capture_path_matches_single_batch_call():
    """The live path (tracker + per-close scoring) agrees with one
    fit-then-score batch invocation over the same packets."""
    from repro.features.encoding import FlowVectorEncoder
    from repro.flows.assembler import FlowAssembler
    from repro.flows.netflow import NETFLOW_FEATURE_NAMES
    from repro.core.preprocessing import flow_feature_dicts
    from repro.ids.dnn import DNNClassifierIDS
    from repro.stream.detector import FlowStreamDetector
    from repro.stream.service import stream_capture
    from repro.stream.sources import ListSource

    dataset = _dataset("Mirai", 0, SCALE)
    cut = len(dataset.packets) // 2
    train_packets = dataset.packets[:cut]
    test_packets = dataset.packets[cut:]

    # Batch reference: assemble everything, fit on prefix flows, score
    # the rest in one call.
    train_flows = FlowAssembler().assemble(train_packets)
    test_flows = FlowAssembler().assemble(test_packets)
    encoder = FlowVectorEncoder(NETFLOW_FEATURE_NAMES)
    train_x = encoder.encode(flow_feature_dicts(train_flows, "netflow"))
    test_x = encoder.encode(flow_feature_dicts(test_flows, "netflow"))
    batch_ids = DNNClassifierIDS(seed=0)
    batch_ids.fit(train_flows, train_x, np.array([f.label for f in train_flows]))
    batch_scores = batch_ids.anomaly_scores(test_flows, test_x)

    stream_ids = DNNClassifierIDS(seed=0)
    detector = FlowStreamDetector(stream_ids, batch_size=16)
    report = stream_capture(
        ListSource(dataset.packets),
        detector,
        warmup_packets=cut,
        threshold=0.5,
        window_seconds=60.0,
    )
    # Streaming emits flows in completion order; compare as score
    # multisets keyed by flow end time (boundaries agree per
    # test_stream_tracker parity).
    assert report.n_scored == len(batch_scores)
    streamed = np.sort(report.scores)
    np.testing.assert_array_equal(streamed, np.sort(batch_scores))


def test_stream_report_shape():
    report = stream_experiment(
        _config("Kitsune", "Mirai"), window_seconds=10.0,
        dataset_provider=_provider,
    )
    payload = report.to_dict()
    for key in ("ids", "unit", "threshold", "metrics", "windows", "alerts",
                "packets_per_second", "alert_rate", "n_scored"):
        assert key in payload
    assert payload["unit"] == "packet"
    assert payload["metrics"] is not None
    assert payload["windows"], "expected at least one window"
    total_items = sum(w["items"] for w in payload["windows"])
    assert total_items == payload["n_scored"]
    import json

    json.dumps(payload)  # must be JSON-serialisable as-is
