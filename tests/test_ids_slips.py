"""Tests for the Slips behavioural IPS: detectors, Markov model,
evidence accumulation, alerting."""

import numpy as np
import pytest

from repro.flows.assembler import FlowAssembler
from repro.ids.slips import SlipsIDS, encode_letters
from repro.ids.slips.detectors import (
    detect_beaconing,
    detect_horizontal_portscan,
    detect_suspicious_port,
    detect_vertical_portscan,
)
from repro.ids.slips.evidence import Evidence, EvidenceKind
from repro.ids.slips.markov import BehaviourModel, default_c2_model
from repro.ids.slips.profiles import build_profile_windows

from tests.conftest import make_tcp_packet, make_udp_packet


def _flows(packets):
    packets.sort(key=lambda p: p.timestamp)
    return FlowAssembler().assemble(packets)


def _windows(flows):
    return build_profile_windows(flows, window_width=3600.0)


class TestProfiles:
    def test_grouping_by_source_and_window(self):
        flows = _flows(
            [make_udp_packet(0.0, sport=1000),
             make_udp_packet(1.0, src="10.0.0.9", sport=2000),
             make_udp_packet(4000.0, sport=3000)]
        )
        windows = _windows(flows)
        assert ("10.0.0.1", 0) in windows
        assert ("10.0.0.9", 0) in windows
        assert ("10.0.0.1", 1) in windows

    def test_empty(self):
        assert build_profile_windows([]) == {}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_profile_windows([], window_width=0)


class TestDetectors:
    def test_vertical_portscan_fires(self):
        packets = [
            make_tcp_packet(float(i) * 0.01, sport=40000, dport=port)
            for i, port in enumerate(range(1000, 1030))
        ]
        windows = _windows(_flows(packets))
        evidence = list(detect_vertical_portscan(next(iter(windows.values()))))
        assert len(evidence) == 1
        assert evidence[0].kind is EvidenceKind.VERTICAL_PORTSCAN
        assert evidence[0].weight > 0.5

    def test_vertical_portscan_quiet_below_threshold(self):
        packets = [
            make_tcp_packet(float(i) * 0.01, sport=40000, dport=port)
            for i, port in enumerate(range(1000, 1010))
        ]
        windows = _windows(_flows(packets))
        assert list(detect_vertical_portscan(next(iter(windows.values())))) == []

    def test_horizontal_portscan_fires(self):
        packets = [
            make_tcp_packet(float(i) * 0.01, dst=f"10.9.{i}.1", sport=40000,
                            dport=23)
            for i in range(40)
        ]
        windows = _windows(_flows(packets))
        evidence = list(detect_horizontal_portscan(next(iter(windows.values()))))
        assert len(evidence) == 1
        assert "port 23" in evidence[0].description

    def test_beaconing_fires_on_periodic_small_flows(self):
        from repro.net.tcp import TCPFlags

        packets = []
        for i in range(12):
            t = i * 30.0
            packets.append(make_tcp_packet(t, sport=30000 + i, dport=6667,
                                           payload=b"x" * 40))
            packets.append(make_tcp_packet(t + 0.2, sport=30000 + i,
                                           dport=6667, flags=TCPFlags.FIN))
        windows = _windows(_flows(packets))
        evidence = list(detect_beaconing(next(iter(windows.values()))))
        assert any(e.kind is EvidenceKind.BEACONING for e in evidence)

    def test_beaconing_ignores_floods(self):
        """Thousands of sub-second flows are volumetric, not beaconing."""
        packets = [
            make_tcp_packet(i * 0.002, sport=20000 + i, dport=80)
            for i in range(600)
        ]
        windows = _windows(_flows(packets))
        assert list(detect_beaconing(next(iter(windows.values())))) == []

    def test_suspicious_port_fires(self):
        packets = []
        for i in range(4):
            packets.append(make_tcp_packet(float(i) * 10, sport=30000 + i,
                                           dport=31337))
        windows = _windows(_flows(packets))
        evidence = list(detect_suspicious_port(next(iter(windows.values()))))
        assert len(evidence) == 1

    def test_well_known_port_not_suspicious(self):
        packets = [make_tcp_packet(float(i) * 10, sport=30000 + i, dport=443)
                   for i in range(5)]
        windows = _windows(_flows(packets))
        assert list(detect_suspicious_port(next(iter(windows.values())))) == []


class TestMarkovModel:
    def test_letters_encode_size_classes(self):
        flows = _flows([
            make_udp_packet(0.0, sport=1000, payload=b"x" * 10),
            make_udp_packet(30.0, sport=1001, payload=b"x" * 1400),
        ])
        letters = encode_letters(flows)
        assert letters[0] == "s"
        assert letters[1] in "mM"

    def test_periodicity_uppercases(self):
        flows = _flows([
            make_udp_packet(i * 30.0, sport=1000 + i, payload=b"x" * 10)
            for i in range(6)
        ])
        letters = encode_letters(flows)
        assert letters[1:] == letters[1:].upper()

    def test_empty_sequence(self):
        assert encode_letters([]) == ""

    def test_c2_model_prefers_beaconing_strings(self):
        model = default_c2_model()
        beacon_rate = model.log_likelihood_rate("s" + "S" * 20)
        random_rate = model.log_likelihood_rate("slmslmLMsml")
        assert beacon_rate > random_rate

    def test_short_sequence_is_minus_inf(self):
        model = BehaviourModel("x")
        assert model.log_likelihood_rate("s") == -np.inf


class TestEvidence:
    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            Evidence(EvidenceKind.BEACONING, -0.1, "", "1.2.3.4", 0)


class TestSlipsEndToEnd:
    def _c2_scenario(self):
        """An infected host beacons to a C2 on an odd port; a clean
        host does ordinary web requests."""
        packets = []
        from repro.net.tcp import TCPFlags

        for i in range(20):  # periodic small beacons, infected host
            t = i * 30.0
            packets.append(make_tcp_packet(t, src="10.0.0.66", dst="7.7.7.7",
                                           sport=30000 + i, dport=6667,
                                           payload=b"x" * 30, label=1))
            packets.append(make_tcp_packet(t + 0.1, src="10.0.0.66",
                                           dst="7.7.7.7", sport=30000 + i,
                                           dport=6667, flags=TCPFlags.FIN,
                                           label=1))
        for i in range(8):  # benign browsing, clean host
            packets.append(make_tcp_packet(i * 60.0 + 5.0, src="10.0.0.2",
                                           dst="10.0.0.50", sport=41000 + i,
                                           dport=80, payload=b"GET"))
        return _flows(packets)

    def test_alerts_on_c2_profile_only(self):
        flows = self._c2_scenario()
        ids = SlipsIDS()
        scores = ids.anomaly_scores(flows, np.zeros((len(flows), 1)))
        labels = np.array([f.label for f in flows])
        assert scores[labels == 1].max() > 0  # C2 flows flagged
        assert scores[labels == 0].max() == 0  # clean host untouched
        assert ids.last_alerts and ids.last_alerts[0][0] == "10.0.0.66"

    def test_silent_on_plain_flood(self):
        """A volumetric single-destination flood produces no evidence —
        the behaviour behind Slips' zero BoT-IoT row."""
        packets = [
            make_tcp_packet(i * 0.002, src="10.0.0.9", dst="10.0.0.80",
                            sport=20000 + (i % 40000), dport=80, label=1)
            for i in range(800)
        ]
        flows = _flows(packets)
        ids = SlipsIDS()
        scores = ids.anomaly_scores(flows, np.zeros((len(flows), 1)))
        assert scores.max() == 0.0

    def test_recidivism_lowers_threshold(self):
        """After one alert, a later window of the same profile alerts on
        evidence that alone would sit under the base threshold."""
        from repro.net.tcp import TCPFlags

        packets = []
        # Window 0: strong C2 beaconing -> alert.
        for i in range(20):
            t = i * 30.0
            packets.append(make_tcp_packet(t, src="10.0.0.66", dst="7.7.7.7",
                                           sport=30000 + i, dport=6667,
                                           payload=b"x" * 30))
            packets.append(make_tcp_packet(t + 0.1, src="10.0.0.66",
                                           dst="7.7.7.7", sport=30000 + i,
                                           dport=6667, flags=TCPFlags.FIN))
        # Window 2: a horizontal scan (alone ~0.6-0.9 < 1.0).
        for i in range(60):
            packets.append(make_tcp_packet(7300.0 + i * 0.05,
                                           src="10.0.0.66",
                                           dst=f"10.8.{i}.1",
                                           sport=40000, dport=23))
        flows = _flows(packets)
        ids = SlipsIDS()
        ids.anomaly_scores(flows, np.zeros((len(flows), 1)))
        alerted_windows = [alert[1] for alert in ids.last_alerts]
        assert 0 in alerted_windows and 2 in alerted_windows

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SlipsIDS(alert_threshold=0)
        with pytest.raises(ValueError):
            SlipsIDS(recidivist_factor=0)

    def test_fit_is_noop(self):
        SlipsIDS().fit([], np.zeros((0, 1)), None)
