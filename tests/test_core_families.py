"""Tests for per-attack-family recall analysis."""

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.families import (
    CONTENT_FAMILIES,
    VOLUMETRIC_FAMILIES,
    FamilyRecall,
    family_breakdown,
    volumetric_vs_content_recall,
)
from repro.core.metrics import MetricReport


def _fake_result(attack_types, y_true, scores, threshold=0.5):
    return ExperimentResult(
        config=ExperimentConfig(ids_name="DNN", dataset_name="Mirai"),
        metrics=MetricReport(accuracy=0, precision=0, recall=0, f1=0),
        threshold=threshold,
        scores=np.asarray(scores, dtype=float),
        y_true=np.asarray(y_true, dtype=int),
        notes={},
        runtime_seconds=0.0,
        attack_types=tuple(attack_types),
    )


class TestFamilyBreakdown:
    def test_counts_per_family(self):
        result = _fake_result(
            ["mirai-scan", "mirai-scan", "exploits", "", ""],
            [1, 1, 1, 0, 0],
            [0.9, 0.1, 0.9, 0.2, 0.8],
        )
        breakdown = {fr.family: fr for fr in family_breakdown(result)}
        assert breakdown["mirai-scan"].total == 2
        assert breakdown["mirai-scan"].detected == 1
        assert breakdown["mirai-scan"].recall == 0.5
        assert breakdown["exploits"].recall == 1.0

    def test_benign_items_excluded(self):
        result = _fake_result(["", ""], [0, 0], [0.9, 0.9])
        assert family_breakdown(result) == []

    def test_sorted_by_size(self):
        result = _fake_result(
            ["exploits"] + ["mirai-scan"] * 3,
            [1, 1, 1, 1],
            [0.9] * 4,
        )
        breakdown = family_breakdown(result)
        assert breakdown[0].family == "mirai-scan"

    def test_misaligned_attack_types_rejected(self):
        result = _fake_result(["mirai-scan"], [1, 1], [0.9, 0.9])
        with pytest.raises(ValueError, match="aligned"):
            family_breakdown(result)

    def test_kind_classification(self):
        assert FamilyRecall("ddos-udp-flood", 1, 1).kind == "volumetric"
        assert FamilyRecall("web-attack", 1, 1).kind == "content"
        assert FamilyRecall("novel-thing", 1, 1).kind == "other"

    def test_family_taxonomies_disjoint(self):
        assert not VOLUMETRIC_FAMILIES & CONTENT_FAMILIES


class TestVolumetricVsContent:
    def test_aggregates(self):
        result = _fake_result(
            ["mirai-scan", "mirai-scan", "exploits", "exploits"],
            [1, 1, 1, 1],
            [0.9, 0.9, 0.1, 0.9],
        )
        vol, content = volumetric_vs_content_recall(result)
        assert vol == 1.0
        assert content == 0.5

    def test_empty_sides_are_zero(self):
        result = _fake_result(["mirai-scan"], [1], [0.9])
        vol, content = volumetric_vs_content_recall(result)
        assert vol == 1.0 and content == 0.0


class TestEndToEnd:
    def test_kitsune_unsw_family_split(self):
        """The paper's enterprise finding, at family granularity: on
        UNSW-NB15 Kitsune's recall on volumetric families exceeds its
        recall on content-style families."""
        from dataclasses import replace
        from repro.core.experiment import EXPERIMENT_MATRIX

        config = replace(EXPERIMENT_MATRIX[("Kitsune", "UNSW-NB15")],
                         scale=0.15, seed=0)
        result = run_experiment(config)
        assert len(result.attack_types) == len(result.y_true)
        vol, content = volumetric_vs_content_recall(result)
        assert vol >= content
