"""Statistical and structural tests for benign and attack generators."""

import numpy as np
import pytest

from repro.datasets.attacks import (
    c2_beaconing,
    data_exfiltration,
    mirai_scan_phase,
    network_sweep,
    port_scan,
    slowloris,
    ssh_bruteforce,
    syn_flood,
    udp_flood_ddos,
    web_attack_session,
)
from repro.datasets.benign import (
    iot_heartbeat,
    iot_telemetry,
    web_browsing_session,
)
from repro.datasets.traffic import Network
from repro.net.tcp import TCPFlags, TCPHeader
from repro.utils.rng import SeededRNG


@pytest.fixture
def rng():
    return SeededRNG(7, "gen-test")


@pytest.fixture
def network(rng):
    return Network(subnet="192.168", rng=rng.child("net"))


class TestBenignModels:
    def test_iot_telemetry_is_regular(self, rng, network):
        device, broker = network.hosts(2)
        packets = iot_telemetry(rng, 0.0, device, broker, network,
                                reports=30, period=5.0)
        # Client data packets arrive near-periodically: CV of gaps between
        # consecutive telemetry payload packets is small.
        data = [p for p in packets if p.src_ip == device.ip and p.payload]
        gaps = np.diff([p.timestamp for p in data])
        gaps = gaps[gaps > 1.0]  # the inter-report gaps
        assert gaps.std() / gaps.mean() < 0.2

    def test_iot_heartbeat_period(self, rng, network):
        device, server = network.hosts(2)
        packets = iot_heartbeat(rng, 0.0, device, server, network,
                                beats=20, period=10.0)
        requests = [p for p in packets if p.src_ip == device.ip]
        gaps = np.diff([p.timestamp for p in requests])
        assert abs(gaps.mean() - 10.0) < 0.5

    def test_web_browsing_is_benign_and_bursty(self, rng, network):
        client, server, resolver = network.hosts(3)
        sizes = []
        for i in range(30):
            packets = web_browsing_session(rng.child(f"s{i}"), 0.0, client,
                                           server, network, resolver=resolver)
            assert all(p.label == 0 for p in packets)
            sizes.append(sum(len(p.payload) for p in packets))
        # Heavy-tailed: max session dwarfs the median.
        assert max(sizes) > 4 * np.median(sizes)


class TestAttackGenerators:
    def test_all_attack_packets_labelled(self, rng, network):
        attacker, victim = network.hosts(2)
        for packets in (
            port_scan(rng.child("ps"), 0.0, attacker, victim, ports=30),
            syn_flood(rng.child("sf"), 0.0, attacker, victim,
                      packets_count=50),
            ssh_bruteforce(rng.child("bf"), 0.0, attacker, victim, network,
                           attempts=5),
            web_attack_session(rng.child("wa"), 0.0, attacker, victim,
                               network),
            data_exfiltration(rng.child("ex"), 0.0, attacker, victim,
                              network, volume=10_000),
        ):
            assert packets, "generator produced nothing"
            assert all(p.label == 1 for p in packets)
            assert all(p.attack_type for p in packets)

    def test_port_scan_covers_distinct_ports(self, rng, network):
        attacker, victim = network.hosts(2)
        packets = port_scan(rng, 0.0, attacker, victim, ports=100)
        probed = {p.dst_port for p in packets if p.src_ip == attacker.ip}
        assert len(probed) >= 95  # a few random collisions allowed

    def test_port_scan_open_ports_answer_synack(self, rng, network):
        attacker, victim = network.hosts(2)
        packets = port_scan(rng, 0.0, attacker, victim, ports=25,
                            open_ports=(22,))
        synacks = [
            p for p in packets
            if isinstance(p.transport, TCPHeader)
            and p.transport.flags == TCPFlags.SYN | TCPFlags.ACK
        ]
        assert len(synacks) == 1 and synacks[0].src_port == 22

    def test_syn_flood_rate(self, rng, network):
        attacker, victim = network.hosts(2)
        packets = syn_flood(rng, 0.0, attacker, victim, packets_count=1000,
                            rate=2000.0)
        sent = [p for p in packets if p.src_ip == attacker.ip]
        duration = sent[-1].timestamp - sent[0].timestamp
        assert 1000 / duration > 1000  # well above benign rates

    def test_udp_flood_multiple_sources(self, rng, network):
        bots = network.hosts(4)
        victim = network.host()
        packets = udp_flood_ddos(rng, 0.0, bots, victim, packets_per_bot=50)
        assert {p.src_ip for p in packets} == {b.ip for b in bots}
        assert all(p.dst_ip == victim.ip for p in packets)

    def test_c2_beaconing_periodicity(self, rng, network):
        bot, c2 = network.hosts(2)
        packets = c2_beaconing(rng, 0.0, bot, c2, network, beacons=20,
                               period=30.0)
        syns = [p for p in packets
                if isinstance(p.transport, TCPHeader)
                and p.transport.flags == TCPFlags.SYN]
        gaps = np.diff([p.timestamp for p in syns])
        assert gaps.std() / gaps.mean() < 0.1

    def test_mirai_scan_targets_telnet(self, rng, network):
        bots = network.hosts(2)
        space = network.hosts(30)
        packets = mirai_scan_phase(rng, 0.0, bots, space, probes_per_bot=100)
        probes = [p for p in packets if p.label and p.dst_port in (23, 2323)]
        assert len(probes) >= 200 * 0.9

    def test_network_sweep_covers_hosts(self, rng, network):
        scanner = network.host()
        targets = network.hosts(40)
        packets = network_sweep(rng, 0.0, scanner, targets, port=445)
        assert {p.dst_ip for p in packets if p.src_ip == scanner.ip} == {
            t.ip for t in targets
        }

    def test_slowloris_connections_are_long(self, rng, network):
        attacker, victim = network.hosts(2)
        packets = slowloris(rng, 0.0, attacker, victim, network,
                            connections=5, duration=60.0)
        by_port: dict = {}
        for p in packets:
            if p.src_ip == attacker.ip:
                by_port.setdefault(p.src_port, []).append(p.timestamp)
        spans = [max(ts) - min(ts) for ts in by_port.values()]
        assert np.median(spans) > 30.0
