"""Tests for the traffic generator engine primitives."""

import pytest

from repro.datasets.traffic import (
    Network,
    dns_lookup,
    icmp_ping,
    tcp_conversation,
    udp_exchange,
)
from repro.net.dns import DNSMessage
from repro.net.tcp import TCPFlags, TCPHeader
from repro.utils.rng import SeededRNG


@pytest.fixture
def rng():
    return SeededRNG(99, "traffic-test")


@pytest.fixture
def network(rng):
    return Network(subnet="10.1", rng=rng.child("net"))


class TestNetwork:
    def test_unique_hosts(self, network):
        hosts = network.hosts(50)
        assert len({h.ip for h in hosts}) == 50
        assert len({h.mac for h in hosts}) == 50

    def test_subnet_prefix(self, network):
        assert network.host().ip.startswith("10.1.")

    def test_ephemeral_ports_wrap(self, network):
        network._next_port = 60999
        first = network.ephemeral_port()
        second = network.ephemeral_port()
        assert first == 60999
        assert second == 32768


class TestTCPConversation:
    def _conv(self, rng, network, **kwargs):
        client, server = network.hosts(2)
        defaults = dict(sport=network.ephemeral_port(), dport=80,
                        request_sizes=[100], response_sizes=[2000])
        defaults.update(kwargs)
        return tcp_conversation(rng, 0.0, client, server, **defaults)

    def test_handshake_shape(self, rng, network):
        packets = self._conv(rng, network)
        assert packets[0].transport.flags == TCPFlags.SYN
        assert packets[1].transport.flags == TCPFlags.SYN | TCPFlags.ACK
        assert packets[2].transport.flags == TCPFlags.ACK

    def test_graceful_close(self, rng, network):
        packets = self._conv(rng, network)
        fins = [p for p in packets
                if isinstance(p.transport, TCPHeader)
                and p.transport.has(TCPFlags.FIN)]
        assert len(fins) == 2  # both directions

    def test_no_close_when_disabled(self, rng, network):
        packets = self._conv(rng, network, graceful_close=False)
        assert not any(
            p.transport.has(TCPFlags.FIN) for p in packets
            if isinstance(p.transport, TCPHeader)
        )

    def test_mss_segmentation(self, rng, network):
        packets = self._conv(rng, network, request_sizes=[5000],
                             response_sizes=[0])
        data = [p for p in packets if p.payload]
        assert len(data) == 4  # ceil(5000/1448)
        assert sum(len(p.payload) for p in data) == 5000
        assert all(len(p.payload) <= 1448 for p in data)

    def test_timestamps_monotonic(self, rng, network):
        packets = self._conv(rng, network,
                             request_sizes=[100, 200, 300],
                             response_sizes=[1000, 2000, 3000])
        stamps = [p.timestamp for p in packets]
        assert stamps == sorted(stamps)

    def test_labels_propagate(self, rng, network):
        packets = self._conv(rng, network, label=1, attack_type="test-attack")
        assert all(p.label == 1 for p in packets)
        assert all(p.attack_type == "test-attack" for p in packets)

    def test_deterministic(self, network):
        client, server = network.hosts(2)
        a = tcp_conversation(SeededRNG(5), 0.0, client, server, sport=40000,
                             dport=80, request_sizes=[64],
                             response_sizes=[128])
        b = tcp_conversation(SeededRNG(5), 0.0, client, server, sport=40000,
                             dport=80, request_sizes=[64],
                             response_sizes=[128])
        assert [p.timestamp for p in a] == [p.timestamp for p in b]


class TestUDPAndDNSAndICMP:
    def test_udp_exchange_round(self, rng, network):
        client, server = network.hosts(2)
        packets = udp_exchange(rng, 1.0, client, server, sport=4000,
                               dport=53, request_size=30, response_size=200)
        assert len(packets) == 2
        assert packets[0].src_ip == client.ip
        assert packets[1].src_ip == server.ip
        assert len(packets[1].payload) == 200

    def test_udp_no_response(self, rng, network):
        client, server = network.hosts(2)
        packets = udp_exchange(rng, 1.0, client, server, sport=4000,
                               dport=9999, request_size=30)
        assert len(packets) == 1

    def test_dns_lookup_parses(self, rng, network):
        client, resolver = network.hosts(2)
        packets = dns_lookup(rng, 0.0, client, resolver, "broker.iot",
                             "10.1.0.77", sport=5353)
        query = DNSMessage.from_bytes(packets[0].payload)
        reply = DNSMessage.from_bytes(packets[1].payload)
        assert query.questions[0].name == "broker.iot"
        assert not query.is_response
        assert reply.is_response
        assert reply.answers[0].address == "10.1.0.77"
        assert query.transaction_id == reply.transaction_id

    def test_icmp_ping_pairs(self, rng, network):
        client, server = network.hosts(2)
        packets = icmp_ping(rng, 0.0, client, server, count=3)
        assert len(packets) == 6
        requests = [p for p in packets if p.transport.icmp_type == 8]
        replies = [p for p in packets if p.transport.icmp_type == 0]
        assert len(requests) == 3 and len(replies) == 3
        assert {p.transport.sequence for p in requests} == {0, 1, 2}
