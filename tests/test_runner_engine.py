"""The execution engine's determinism contract, caches and telemetry.

The load-bearing guarantee: a cell's result depends only on its config.
Serial, parallel, cached and freshly-generated runs of the same
(sub-)matrix must therefore be *bit-identical* — scores, thresholds and
metrics alike.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.experiment import (
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    run_experiment,
)
from repro.core.pipeline import IDSAnalysisPipeline
from repro.datasets.registry import (
    generate_dataset,
    generate_dataset_uncached,
    install_dataset_cache,
)
from repro.runner import (
    DatasetCache,
    EngineError,
    ExperimentEngine,
    ResultCache,
    config_key,
    dataset_key,
    dataset_requirements,
    plan_cells,
    plan_configs,
)

IDS_NAMES = ("DNN", "Slips")
DATASET_NAMES = ("BoT-IoT", "Stratosphere")
SCALE = 0.08
SEED = 0


def _assert_identical(expected, actual):
    assert expected.keys() == actual.keys()
    for key in expected:
        np.testing.assert_array_equal(expected[key].scores, actual[key].scores)
        np.testing.assert_array_equal(expected[key].y_true, actual[key].y_true)
        assert expected[key].metrics == actual[key].metrics, key
        assert expected[key].threshold == actual[key].threshold, key
        assert expected[key].attack_types == actual[key].attack_types, key


@pytest.fixture(scope="module")
def seed_path_results():
    """The seed reproduction's path: serial, uncached run_experiment."""
    results = {}
    for ids_name in IDS_NAMES:
        for dataset_name in DATASET_NAMES:
            config = replace(
                EXPERIMENT_MATRIX[(ids_name, dataset_name)],
                seed=SEED, scale=SCALE,
            )
            results[(ids_name, dataset_name)] = run_experiment(config)
    return results


class TestDeterminism:
    def test_serial_engine_matches_seed_path(self, seed_path_results):
        engine = ExperimentEngine(jobs=1)
        results = engine.run_matrix(
            IDS_NAMES, DATASET_NAMES, seed=SEED, scale=SCALE
        )
        _assert_identical(seed_path_results, results)

    def test_parallel_engine_bit_identical_to_serial(self, seed_path_results):
        engine = ExperimentEngine(jobs=2)
        results = engine.run_matrix(
            IDS_NAMES, DATASET_NAMES, seed=SEED, scale=SCALE
        )
        _assert_identical(seed_path_results, results)

    def test_two_runs_same_seed_identical(self):
        first = ExperimentEngine(jobs=1).run_matrix(
            ("Slips",), DATASET_NAMES, seed=7, scale=SCALE
        )
        second = ExperimentEngine(jobs=1).run_matrix(
            ("Slips",), DATASET_NAMES, seed=7, scale=SCALE
        )
        _assert_identical(first, second)

    def test_pipeline_serial_and_parallel_identical(self):
        serial = IDSAnalysisPipeline(
            seed=SEED, scale=SCALE,
            ids_names=IDS_NAMES, dataset_names=DATASET_NAMES, jobs=1,
        )
        parallel = IDSAnalysisPipeline(
            seed=SEED, scale=SCALE,
            ids_names=IDS_NAMES, dataset_names=DATASET_NAMES, jobs=2,
        )
        _assert_identical(serial.run_all(), parallel.run_all())

    def test_disk_cached_rerun_identical(self, seed_path_results, tmp_path):
        cold = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        cold_results = cold.run_matrix(
            IDS_NAMES, DATASET_NAMES, seed=SEED, scale=SCALE
        )
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        warm_results = warm.run_matrix(
            IDS_NAMES, DATASET_NAMES, seed=SEED, scale=SCALE
        )
        _assert_identical(seed_path_results, cold_results)
        _assert_identical(seed_path_results, warm_results)
        assert warm.last_telemetry.result_cache_hits == 4


class TestDatasetCache:
    def test_memory_hit_returns_same_object(self):
        cache = DatasetCache()
        a = cache.get_or_generate("Mirai", seed=1, scale=0.02)
        b = cache.get_or_generate("Mirai", seed=1, scale=0.02)
        assert a is b
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_distinct_inputs_distinct_entries(self):
        cache = DatasetCache()
        a = cache.get_or_generate("Mirai", seed=1, scale=0.02)
        b = cache.get_or_generate("Mirai", seed=2, scale=0.02)
        c = cache.get_or_generate("Mirai", seed=1, scale=0.03)
        assert cache.stats.misses == 3
        assert len({id(a), id(b), id(c)}) == 3

    def test_disk_round_trip_identical_packets(self, tmp_path):
        first = DatasetCache(cache_dir=tmp_path)
        generated = first.get_or_generate("Mirai", seed=3, scale=0.02)
        fresh = DatasetCache(cache_dir=tmp_path)  # empty memory tier
        loaded = fresh.get_or_generate("Mirai", seed=3, scale=0.02)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.misses == 0
        assert len(loaded) == len(generated)
        for ours, theirs in zip(generated.packets, loaded.packets):
            assert ours.timestamp == theirs.timestamp
            assert ours.label == theirs.label
            assert ours.to_bytes() == theirs.to_bytes()

    def test_cached_equals_uncached(self):
        cached = DatasetCache().get_or_generate("Mirai", seed=4, scale=0.02)
        direct = generate_dataset_uncached("Mirai", seed=4, scale=0.02)
        assert [p.timestamp for p in cached.packets] == \
               [p.timestamp for p in direct.packets]
        assert cached.labels == direct.labels

    def test_eviction_respects_budget(self):
        cache = DatasetCache(max_memory_items=2)
        for seed in range(4):
            cache.get_or_generate("Mirai", seed=seed, scale=0.02)
        assert len(cache) == 2

    def test_keys_distinguish_every_input(self):
        keys = {
            dataset_key("Mirai", seed=0, scale=0.1),
            dataset_key("Mirai", seed=1, scale=0.1),
            dataset_key("Mirai", seed=0, scale=0.2),
            dataset_key("BoT-IoT", seed=0, scale=0.1),
        }
        assert len(keys) == 4


class TestResultCacheKeys:
    def test_key_stable_for_equal_configs(self):
        a = ExperimentConfig(ids_name="Slips", dataset_name="Mirai")
        b = ExperimentConfig(ids_name="Slips", dataset_name="Mirai")
        assert config_key(a) == config_key(b)

    def test_key_sensitive_to_every_axis(self):
        base = ExperimentConfig(ids_name="Slips", dataset_name="Mirai")
        variants = [
            replace(base, seed=1),
            replace(base, scale=0.9),
            replace(base, max_fpr=0.01),
            replace(base, ids_overrides={"threshold": 2.0}),
            replace(base, ids_name="DNN"),
        ]
        keys = {config_key(v) for v in variants}
        assert config_key(base) not in keys
        assert len(keys) == len(variants)

    def test_round_trip(self, tmp_path):
        config = replace(
            EXPERIMENT_MATRIX[("Slips", "Mirai")], seed=SEED, scale=0.03
        )
        result = run_experiment(config)
        cache = ResultCache(cache_dir=tmp_path)
        assert cache.get(config) is None
        cache.put(config, result)
        loaded = cache.get(config)
        np.testing.assert_array_equal(result.scores, loaded.scores)
        assert result.metrics == loaded.metrics


class TestRegistryCacheHook:
    def test_generate_dataset_routes_through_installed_hook(self):
        calls = []

        def hook(name, *, seed=0, scale=1.0):
            calls.append((name, seed, scale))
            return generate_dataset_uncached(name, seed=seed, scale=scale)

        previous = install_dataset_cache(hook)
        try:
            generate_dataset("Mirai", seed=5, scale=0.02)
        finally:
            install_dataset_cache(previous)
        assert calls == [("Mirai", 5, 0.02)]

    def test_engine_installs_hook_only_during_cells(self):
        from repro.datasets import registry

        assert registry._DATASET_CACHE is None
        ExperimentEngine(jobs=1).run(plan_configs([
            ExperimentConfig(
                ids_name="Slips", dataset_name="Mirai", scale=0.02,
                flow_train_fraction=0.0, threshold_strategy="fixed",
            )
        ]))
        assert registry._DATASET_CACHE is None


class TestRunConfigsSweeps:
    def test_multi_seed_sweep_keeps_every_result(self):
        """A sweep repeats (ids, dataset) across seeds; run_configs must
        return one result per config, not collapse them by cell key."""
        base = ExperimentConfig(
            ids_name="Slips", dataset_name="Mirai", scale=0.02,
            flow_train_fraction=0.0, threshold_strategy="fixed",
        )
        sweep = [replace(base, seed=seed) for seed in (0, 1, 2)]
        results = ExperimentEngine(jobs=1).run_configs(sweep)
        assert len(results) == 3
        assert [r.config.seed for r in results] == [0, 1, 2]
        # Each seed's result matches its own direct run.
        for config, result in zip(sweep, results):
            direct = run_experiment(config)
            np.testing.assert_array_equal(direct.scores, result.scores)


class TestSchedulingPlans:
    def test_plan_is_dataset_major_and_indexed(self):
        cells = plan_cells(IDS_NAMES, DATASET_NAMES, seed=3, scale=0.5)
        assert [c.index for c in cells] == [0, 1, 2, 3]
        assert [c.key for c in cells] == [
            ("DNN", "BoT-IoT"), ("Slips", "BoT-IoT"),
            ("DNN", "Stratosphere"), ("Slips", "Stratosphere"),
        ]
        assert all(c.config.seed == 3 and c.config.scale == 0.5 for c in cells)

    def test_dataset_requirements_include_cross_corpus(self):
        cells = plan_cells(("DNN",), ("Mirai",), seed=0, scale=0.4)
        triples = dataset_requirements(cells)
        assert ("Mirai", 0, 0.4) in triples
        assert ("KDD-reference", 0, 0.2) in triples
        # The corpus is shared across DNN cells: one requirement only.
        cells = plan_cells(("DNN",), DATASET_NAMES, seed=0, scale=0.4)
        names = [t[0] for t in dataset_requirements(cells)]
        assert names.count("KDD-reference") == 1


class TestRetriesAndFailures:
    def test_unknown_ids_exhausts_retries_with_telemetry(self):
        engine = ExperimentEngine(jobs=1, retries=2)
        bad = ExperimentConfig(ids_name="Zeek", dataset_name="Mirai", scale=0.02)
        with pytest.raises(EngineError, match="failed after 3 attempt"):
            engine.run(plan_configs([bad]))
        telemetry = engine.last_telemetry
        assert telemetry.failed == 1
        assert telemetry.cells[-1].attempts == 3
        assert "unknown IDS" in telemetry.cells[-1].error

    def test_parallel_failure_raises_engine_error(self):
        engine = ExperimentEngine(jobs=2)
        good = ExperimentConfig(
            ids_name="Slips", dataset_name="Mirai", scale=0.02,
            flow_train_fraction=0.0, threshold_strategy="fixed",
        )
        bad = ExperimentConfig(ids_name="Zeek", dataset_name="Mirai", scale=0.02)
        with pytest.raises(EngineError):
            engine.run(plan_configs([good, bad]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentEngine(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            ExperimentEngine(retries=-1)


class TestTelemetry:
    def test_cache_hits_and_summary(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run_matrix(("Slips",), ("Mirai", "Mirai"), seed=0, scale=0.02)
        telemetry = engine.last_telemetry
        # Second cell reuses the first cell's dataset.
        assert telemetry.dataset_cache_hits >= 1
        summary = telemetry.summary()
        assert "cells ok" in summary
        assert "jobs=1" in summary
        assert telemetry.wall_seconds > 0

    def test_progress_callback_sees_every_cell(self):
        seen = []
        engine = ExperimentEngine(jobs=1, progress=seen.append)
        engine.run_matrix(("Slips",), DATASET_NAMES, seed=0, scale=0.02)
        assert [c.key for c in seen] == [
            ("Slips", "BoT-IoT"), ("Slips", "Stratosphere"),
        ]
        assert all(c.status == "ok" for c in seen)


class TestRuntimeSecondsSemantics:
    def test_runtime_excludes_dataset_generation(self):
        """runtime_seconds is the IDS fit/score path only: a provider
        that stalls for 250ms must inflate setup_seconds, not
        runtime_seconds."""
        config = ExperimentConfig(
            ids_name="Slips", dataset_name="Mirai", scale=0.02,
            flow_train_fraction=0.0, threshold_strategy="fixed",
        )
        delay = 0.25

        def slow_provider(name, *, seed=0, scale=1.0):
            time.sleep(delay)
            return generate_dataset_uncached(name, seed=seed, scale=scale)

        result = run_experiment(config, dataset_provider=slow_provider)
        assert result.runtime_seconds >= 0.0
        assert result.runtime_seconds < delay
        assert result.notes["setup_seconds"] >= delay

    def test_fit_score_time_is_recorded(self):
        config = ExperimentConfig(
            ids_name="DNN", dataset_name="Mirai", scale=0.03,
            cross_corpus_train=True, test_prevalence=0.9,
            threshold_strategy="fixed",
        )
        result = run_experiment(config)
        assert result.runtime_seconds > 0.0
        assert result.notes["setup_seconds"] > 0.0


class TestParallelDatasetWarming:
    """Dataset warming runs through the pool; results must not change."""

    def test_lookup_and_put_roundtrip(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        assert cache.lookup("Mirai", seed=0, scale=0.02) is None
        dataset = generate_dataset_uncached("Mirai", seed=0, scale=0.02)
        cache.put("Mirai", dataset, seed=0, scale=0.02)
        assert cache.lookup("Mirai", seed=0, scale=0.02) is dataset
        # put wrote through to disk: a fresh cache over the same dir hits.
        other = DatasetCache(cache_dir=tmp_path)
        loaded = other.lookup("Mirai", seed=0, scale=0.02)
        assert loaded is not None
        assert len(loaded.packets) == len(dataset.packets)

    def test_parallel_warm_matches_serial(self):
        cells = plan_cells(IDS_NAMES, DATASET_NAMES, seed=SEED, scale=0.05)
        serial = ExperimentEngine(jobs=1).run(cells)
        engine = ExperimentEngine(jobs=2)
        parallel = engine.run(cells)
        _assert_identical(serial, parallel)
        telemetry = engine.last_telemetry
        # DNN cells also require the KDD-reference training corpus.
        assert telemetry.datasets_warmed == 3
        assert telemetry.dataset_warm_seconds > 0.0
        assert "warmed 3 dataset(s)" in telemetry.summary()

    def test_warm_skips_already_cached_datasets(self, tmp_path):
        slips = plan_cells(("Slips",), DATASET_NAMES, seed=SEED, scale=0.05)
        first = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        first.run(slips)
        assert first.last_telemetry.datasets_warmed == 2
        # Fresh engine over the same disk cache: the DNN cells reuse
        # both datasets from disk and only the KDD training corpus is
        # an actual miss.
        dnn = plan_cells(("DNN",), DATASET_NAMES, seed=SEED, scale=0.05)
        second = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        second.run(dnn)
        assert second.last_telemetry.datasets_warmed == 1
