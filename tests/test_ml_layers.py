"""Tests for activations, dense layers (numerical gradient check),
losses and optimizers."""

import numpy as np
import pytest

from repro.ml.activations import by_name, identity, relu, sigmoid, tanh
from repro.ml.dense import DenseLayer
from repro.ml.losses import binary_cross_entropy, mean_squared_error
from repro.ml.optimizers import SGD, Adam
from repro.utils.rng import SeededRNG


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        x = np.linspace(-100, 100, 41)
        y = sigmoid.f(x)
        assert np.all((y >= 0) & (y <= 1))
        assert sigmoid.f(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_derivative_matches_numeric(self):
        x = np.array([0.3, -1.2, 2.0])
        eps = 1e-6
        numeric = (sigmoid.f(x + eps) - sigmoid.f(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid.df(sigmoid.f(x)), numeric, rtol=1e-4)

    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu.f(x), [0.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu.df(relu.f(x)), [0.0, 0.0, 1.0])

    def test_tanh_derivative(self):
        x = np.array([0.5])
        y = tanh.f(x)
        assert tanh.df(y)[0] == pytest.approx(1 - np.tanh(0.5) ** 2)

    def test_identity(self):
        x = np.array([4.0])
        assert identity.f(x)[0] == 4.0
        assert identity.df(x)[0] == 1.0

    def test_lookup(self):
        assert by_name("relu") is relu
        with pytest.raises(KeyError):
            by_name("swish")


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, rng=SeededRNG(1))
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 3, rng=SeededRNG(1))

    def test_backward_before_forward_raises(self):
        layer = DenseLayer(2, 2, rng=SeededRNG(1))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_check(self):
        """Analytic weight gradients match central differences."""
        rng = SeededRNG(42)
        layer = DenseLayer(3, 2, sigmoid, rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_fn():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2) / x.shape[0]

        out = layer.forward(x)
        grad_out = (out - target) / x.shape[0]
        layer.backward(grad_out)
        analytic = layer.grad_w.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += eps
                plus = loss_fn()
                layer.weights[i, j] -= 2 * eps
                minus = loss_fn()
                layer.weights[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_input_gradient_check(self):
        rng = SeededRNG(43)
        layer = DenseLayer(3, 2, tanh, rng=rng)
        x = rng.normal(size=(1, 3))
        target = rng.normal(size=(1, 2))
        out = layer.forward(x)
        grad_out = out - target
        grad_in = layer.backward(grad_out)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for j in range(x.shape[1]):
            xp = x.copy()
            xp[0, j] += eps
            lp = 0.5 * np.sum((layer.forward(xp) - target) ** 2)
            xm = x.copy()
            xm[0, j] -= eps
            lm = 0.5 * np.sum((layer.forward(xm) - target) ** 2)
            numeric[0, j] = (lp - lm) / (2 * eps)
        np.testing.assert_allclose(grad_in, numeric, rtol=1e-4, atol=1e-7)


class TestLosses:
    def test_mse_zero_at_match(self):
        loss, grad = mean_squared_error(np.ones(3), np.ones(3))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_bce_penalises_confident_mistakes(self):
        good, _ = binary_cross_entropy(np.array([0.9]), np.array([1.0]))
        bad, _ = binary_cross_entropy(np.array([0.1]), np.array([1.0]))
        assert bad > good

    def test_bce_gradient_direction(self):
        _, grad = binary_cross_entropy(np.array([0.3]), np.array([1.0]))
        assert grad[0] < 0  # raise the prediction toward the target


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        param = np.array([1.0])
        grad = np.array([0.5])
        SGD(learning_rate=0.1).step([(param, grad)])
        assert param[0] == pytest.approx(0.95)

    def test_sgd_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)

    def test_adam_converges_on_quadratic(self):
        param = np.array([5.0])
        adam = Adam(learning_rate=0.1)
        for _ in range(500):
            grad = 2 * param  # d/dx x^2
            adam.step([(param, grad)])
        assert abs(param[0]) < 0.05

    def test_adam_state_is_per_parameter(self):
        a, b = np.array([1.0]), np.array([1.0])
        adam = Adam(learning_rate=0.1)
        adam.step([(a, np.array([1.0])), (b, np.array([-1.0]))])
        assert a[0] < 1.0 < b[0]
