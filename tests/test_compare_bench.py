"""The bench regression comparator (``benchmarks/compare_bench.py``)."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare_bench import compare, load_payloads, main


def payload(bench: str, value: float, *, metric: str = "speedup",
            scale: float | None = 1.0) -> dict:
    return {"bench": bench, "metric": metric, "value": value, "scale": scale}


def write_set(directory, payloads) -> None:
    directory.mkdir(exist_ok=True)
    for item in payloads:
        path = directory / f"BENCH_{item['bench']}.json"
        path.write_text(json.dumps(item))


class TestCompare:
    def test_matching_values_pass(self):
        results = compare(
            {"a": payload("a", 3.0)}, {"a": payload("a", 3.0)},
        )
        assert len(results) == 1
        assert not results[0].regressed
        assert results[0].ratio == 0.0

    def test_large_drop_regresses_small_drop_does_not(self):
        baseline = {"a": payload("a", 4.0)}
        assert compare(baseline, {"a": payload("a", 3.0)})[0].regressed
        assert not compare(baseline, {"a": payload("a", 3.3)})[0].regressed

    def test_improvement_never_regresses(self):
        results = compare({"a": payload("a", 2.0)}, {"a": payload("a", 9.0)})
        assert not results[0].regressed
        assert results[0].ratio == pytest.approx(3.5)

    def test_lower_is_better_direction_for_overhead(self):
        baseline = {"o": payload("o", 1.0, metric="overhead_ratio")}
        worse = {"o": payload("o", 1.5, metric="overhead_ratio")}
        better = {"o": payload("o", 0.5, metric="overhead_ratio")}
        assert compare(baseline, worse)[0].regressed
        improved = compare(baseline, better)[0]
        assert not improved.regressed and improved.ratio > 0

    def test_scale_mismatch_is_skipped_not_judged(self):
        # A 0.05-scale smoke value against a committed scale-1.0 number
        # is noise — even a huge apparent drop must not fail.
        results = compare(
            {"a": payload("a", 7.0, scale=1.0)},
            {"a": payload("a", 1.0, scale=0.05)},
        )
        assert results[0].skipped is not None
        assert "scale mismatch" in results[0].skipped
        assert not results[0].regressed

    def test_custom_threshold(self):
        baseline = {"a": payload("a", 10.0)}
        fresh = {"a": payload("a", 9.0)}
        assert not compare(baseline, fresh, threshold=0.2)[0].regressed
        assert compare(baseline, fresh, threshold=0.05)[0].regressed

    def test_disjoint_benches_are_ignored(self):
        assert compare({"old": payload("old", 1.0)},
                       {"new": payload("new", 1.0)}) == []


class TestCLI:
    def test_regression_fails_with_exit_1(self, tmp_path, capsys):
        write_set(tmp_path / "base", [payload("a", 4.0), payload("b", 1.0)])
        write_set(tmp_path / "fresh", [payload("a", 2.0), payload("b", 1.0)])
        code = main([str(tmp_path / "base"), str(tmp_path / "fresh")])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_clean_run_exits_0(self, tmp_path, capsys):
        write_set(tmp_path / "base", [payload("a", 4.0)])
        write_set(tmp_path / "fresh", [payload("a", 4.1)])
        code = main([str(tmp_path / "base"), str(tmp_path / "fresh")])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_scale_mismatch_exits_0(self, tmp_path, capsys):
        write_set(tmp_path / "base", [payload("a", 7.0, scale=1.0)])
        write_set(tmp_path / "fresh", [payload("a", 1.0, scale=0.05)])
        code = main([str(tmp_path / "base"), str(tmp_path / "fresh")])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_single_file_arguments(self, tmp_path):
        base = tmp_path / "BENCH_a.json"
        base.write_text(json.dumps(payload("a", 2.0)))
        assert main([str(base), str(base)]) == 0

    def test_load_payloads_keys_by_embedded_name(self, tmp_path):
        write_set(tmp_path, [payload("x", 1.0), payload("y", 2.0)])
        loaded = load_payloads(tmp_path)
        assert set(loaded) == {"x", "y"}

    def test_committed_bench_files_self_compare_clean(self, capsys):
        """The committed BENCH_*.json set must compare cleanly against
        itself — proves the comparator parses every real payload."""
        from benchmarks.conftest import REPO_ROOT

        assert main([str(REPO_ROOT), str(REPO_ROOT)]) == 0
