"""The ``repro-cli stream`` surface and its JSON report."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.cli import _parse_duration, _parse_scales, main


class TestDurationParsing:
    def test_plain_seconds_and_suffixes(self):
        assert _parse_duration("10") == 10.0
        assert _parse_duration("10s") == 10.0
        assert _parse_duration("2m") == 120.0
        assert _parse_duration("0.5h") == 1800.0

    def test_rejects_garbage_and_nonpositive(self):
        for bad in ("abc", "10x", "-5s", "0"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_duration(bad)


class TestScalesParsing:
    def test_comma_separated_floats(self):
        assert _parse_scales("0.1,0.5,1.0") == [0.1, 0.5, 1.0]
        assert _parse_scales("0.2") == [0.2]

    def test_rejects_bad_grids(self):
        for bad in ("", "a,b", "0.1,-0.5", "0"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_scales(bad)


class TestStreamCommand:
    def test_dataset_mode_case_insensitive_with_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "mirai",
            "--window", "30s", "--batch", "128", "--scale", "0.03",
            "--json", str(out), "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "stream: Kitsune over dataset:Mirai" in captured
        payload = json.loads(out.read_text())
        assert payload["ids"] == "Kitsune"
        assert payload["unit"] == "packet"
        assert payload["labelled"] is True
        assert payload["batch_size"] == 128
        assert payload["window_seconds"] == 30.0
        assert payload["metrics"] is not None
        assert payload["n_scored"] > 0
        assert payload["windows"]

    def test_pcap_mode_requires_threshold(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        code = main(["stream", "--ids", "Kitsune", "--pcap", str(pcap)])
        assert code == 2
        assert "--threshold" in capsys.readouterr().err

    def test_pcap_mode_unlabelled_report(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "Kitsune", "--pcap", str(pcap),
            "--threshold", "0.5", "--train-packets", "150",
            "--batch", "64", "--window", "60s", "--json", str(out),
            "--quiet",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["labelled"] is False
        assert payload["metrics"] is None  # no ground truth in pcap
        assert payload["threshold_source"] == "fixed"
        assert payload["n_warmup"] == 150
        assert payload["n_scored"] > 0

    def test_pcap_mode_scales_kitsune_grace_to_prefix(self):
        from repro.stream import build_streaming_detector

        detector = build_streaming_detector(
            "kitsune", warmup_packets=1000, labelled=False
        )
        # Same arithmetic as the batch path's build_packet_cell: the
        # grace periods fit the training prefix exactly, so scoring
        # starts trained.
        assert detector.ids.kitnet.fm_grace == 100
        assert detector.ids.kitnet.ad_grace == 900
        # Explicit overrides win over the scaling.
        pinned = build_streaming_detector(
            "kitsune", warmup_packets=1000,
            ids_overrides={"fm_grace": 50, "ad_grace": 60},
        )
        assert pinned.ids.kitnet.fm_grace == 50
        assert pinned.ids.kitnet.ad_grace == 60

    def test_partial_grace_override_scales_the_other(self):
        """Overriding only one grace period used to leave the other at
        its default (900/100), silently blowing the combined grace past
        the warmup prefix; the non-overridden one must scale."""
        import warnings

        from repro.stream import build_streaming_detector

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # scaling must not warn
            fm_only = build_streaming_detector(
                "kitsune", warmup_packets=1000,
                ids_overrides={"fm_grace": 300},
            )
            assert fm_only.ids.kitnet.fm_grace == 300
            assert fm_only.ids.kitnet.ad_grace == 700

            ad_only = build_streaming_detector(
                "kitsune", warmup_packets=1000,
                ids_overrides={"ad_grace": 650},
            )
            assert ad_only.ids.kitnet.fm_grace == 350
            assert ad_only.ids.kitnet.ad_grace == 650

    def test_grace_exceeding_warmup_warns(self):
        import warnings

        from repro.stream import build_streaming_detector

        # Both pinned past the prefix: respected, but loudly.
        with pytest.warns(RuntimeWarning, match="exceed"):
            detector = build_streaming_detector(
                "kitsune", warmup_packets=500,
                ids_overrides={"fm_grace": 400, "ad_grace": 400},
            )
        assert detector.ids.kitnet.fm_grace == 400
        assert detector.ids.kitnet.ad_grace == 400

        # A single override so large the other floors at 100 and the
        # total still spills past the prefix.
        with pytest.warns(RuntimeWarning, match="exceed"):
            floored = build_streaming_detector(
                "kitsune", warmup_packets=300,
                ids_overrides={"fm_grace": 280},
            )
        assert floored.ids.kitnet.ad_grace == 100

        # The well-scaled default split must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_streaming_detector("kitsune", warmup_packets=1000)

    def test_pcap_mode_supervised_ids_is_a_clean_error(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        code = main([
            "stream", "--ids", "dnn", "--pcap", str(pcap),
            "--threshold", "0.5", "--train-packets", "100", "--quiet",
        ])
        assert code == 2
        assert "supervised" in capsys.readouterr().err

    def test_zero_warmup_works_for_training_free_ids(self):
        from repro.stream import (
            DatasetSource, build_streaming_detector, stream_capture,
        )

        detector = build_streaming_detector("slips", batch_size=64)
        report = stream_capture(
            DatasetSource("Mirai", seed=0, scale=0.02),
            detector,
            warmup_packets=0,
            threshold=0.5,
            window_seconds=600.0,
        )
        assert report.n_warmup == 0
        assert report.n_scored > 0

    def test_unknown_ids_is_a_clean_error(self, capsys):
        code = main(["stream", "--ids", "nonsense"])
        assert code == 2
        assert "unknown IDS" in capsys.readouterr().err

    def test_unknown_dataset_is_a_clean_error(self, capsys):
        code = main(["stream", "--ids", "Slips", "--dataset", "nope"])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_flow_ids_stream(self, tmp_path, capsys):
        out = tmp_path / "slips.json"
        code = main([
            "stream", "--ids", "slips", "--dataset", "Mirai",
            "--scale", "0.03", "--window", "10m", "--json", str(out),
            "--quiet",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["unit"] == "flow"
        assert payload["window_seconds"] == 600.0


class TestShardedStreamCommand:
    def test_dataset_mode_with_workers_reports_telemetry(
            self, tmp_path, capsys):
        out = tmp_path / "sharded.json"
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "Mirai",
            "--scale", "0.02", "--batch", "64", "--workers", "2",
            "--checkpoint-every", "200", "--json", str(out), "--quiet",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        # The default warmup must leave a test stream to score even at
        # tiny scales (it is derived from the stream length, not the
        # pcap-mode fixed 1000).
        assert payload["n_scored"] > 0
        assert payload["metrics"] is not None
        notes = payload["notes"]
        assert notes["sharded"] is True
        assert notes["workers_n"] == 2
        assert notes["shard_key"] == "canonical-channel"
        assert notes["checkpoint_every"] == 200
        assert notes["coverage_digest"]
        rows = notes["workers"]
        assert [row["worker"] for row in rows] == [0, 1]
        for row in rows:
            if row["packets"]:
                assert row["pps"] > 0
            assert row["restarts"] == 0
        assert sum(row["packets"] for row in rows) == payload["n_scored"]

    def test_sharded_json_matches_single_worker_parity(self, tmp_path):
        # --workers 1 must go through the sharded engine yet reproduce
        # the in-process run's coverage exactly; here we just pin that
        # the gateable digest is present and stable across reruns.
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            code = main([
                "stream", "--ids", "kitsune", "--dataset", "Mirai",
                "--scale", "0.02", "--batch", "64", "--workers", "1",
                "--json", str(out), "--quiet",
            ])
            assert code == 0
            outs.append(json.loads(out.read_text()))
        assert (outs[0]["notes"]["coverage_digest"]
                == outs[1]["notes"]["coverage_digest"])
        assert (outs[0]["notes"]["merged_score_digest"]
                == outs[1]["notes"]["merged_score_digest"])

    def test_sharded_pcap_mode_requires_threshold(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        code = main(["stream", "--ids", "Kitsune", "--pcap", str(pcap),
                     "--workers", "2"])
        assert code == 2
        assert "--threshold" in capsys.readouterr().err

    def test_sharded_flow_ids_is_a_clean_error(self, capsys):
        code = main([
            "stream", "--ids", "slips", "--dataset", "Mirai",
            "--scale", "0.02", "--workers", "2", "--quiet",
        ])
        assert code == 2
        assert "packet-level" in capsys.readouterr().err

    def test_workers_flag_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--ids", "kitsune", "--dataset", "Mirai",
                  "--workers", "0"])
        assert ">= 1" in capsys.readouterr().err

    def test_explicit_checkpoint_dir_survives_the_run(self, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "Mirai",
            "--scale", "0.02", "--batch", "64", "--workers", "2",
            "--checkpoint-every", "100",
            "--checkpoint-dir", str(ckpt_dir), "--quiet",
        ])
        assert code == 0
        kept = [p.name for p in ckpt_dir.iterdir()]
        assert kept and all(name.endswith(".ckpt") for name in kept)
