"""The ``repro-cli stream`` surface and its JSON report."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.cli import _parse_duration, _parse_scales, main


class TestDurationParsing:
    def test_plain_seconds_and_suffixes(self):
        assert _parse_duration("10") == 10.0
        assert _parse_duration("10s") == 10.0
        assert _parse_duration("2m") == 120.0
        assert _parse_duration("0.5h") == 1800.0

    def test_rejects_garbage_and_nonpositive(self):
        for bad in ("abc", "10x", "-5s", "0"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_duration(bad)


class TestScalesParsing:
    def test_comma_separated_floats(self):
        assert _parse_scales("0.1,0.5,1.0") == [0.1, 0.5, 1.0]
        assert _parse_scales("0.2") == [0.2]

    def test_rejects_bad_grids(self):
        for bad in ("", "a,b", "0.1,-0.5", "0"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_scales(bad)


class TestStreamCommand:
    def test_dataset_mode_case_insensitive_with_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "kitsune", "--dataset", "mirai",
            "--window", "30s", "--batch", "128", "--scale", "0.03",
            "--json", str(out), "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "stream: Kitsune over dataset:Mirai" in captured
        payload = json.loads(out.read_text())
        assert payload["ids"] == "Kitsune"
        assert payload["unit"] == "packet"
        assert payload["labelled"] is True
        assert payload["batch_size"] == 128
        assert payload["window_seconds"] == 30.0
        assert payload["metrics"] is not None
        assert payload["n_scored"] > 0
        assert payload["windows"]

    def test_pcap_mode_requires_threshold(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        code = main(["stream", "--ids", "Kitsune", "--pcap", str(pcap)])
        assert code == 2
        assert "--threshold" in capsys.readouterr().err

    def test_pcap_mode_unlabelled_report(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        out = tmp_path / "report.json"
        code = main([
            "stream", "--ids", "Kitsune", "--pcap", str(pcap),
            "--threshold", "0.5", "--train-packets", "150",
            "--batch", "64", "--window", "60s", "--json", str(out),
            "--quiet",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["labelled"] is False
        assert payload["metrics"] is None  # no ground truth in pcap
        assert payload["threshold_source"] == "fixed"
        assert payload["n_warmup"] == 150
        assert payload["n_scored"] > 0

    def test_pcap_mode_scales_kitsune_grace_to_prefix(self):
        from repro.stream import build_streaming_detector

        detector = build_streaming_detector(
            "kitsune", warmup_packets=1000, labelled=False
        )
        # Same arithmetic as the batch path's build_packet_cell: the
        # grace periods fit the training prefix exactly, so scoring
        # starts trained.
        assert detector.ids.kitnet.fm_grace == 100
        assert detector.ids.kitnet.ad_grace == 900
        # Explicit overrides win over the scaling.
        pinned = build_streaming_detector(
            "kitsune", warmup_packets=1000,
            ids_overrides={"fm_grace": 50, "ad_grace": 60},
        )
        assert pinned.ids.kitnet.fm_grace == 50
        assert pinned.ids.kitnet.ad_grace == 60

    def test_partial_grace_override_scales_the_other(self):
        """Overriding only one grace period used to leave the other at
        its default (900/100), silently blowing the combined grace past
        the warmup prefix; the non-overridden one must scale."""
        import warnings

        from repro.stream import build_streaming_detector

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # scaling must not warn
            fm_only = build_streaming_detector(
                "kitsune", warmup_packets=1000,
                ids_overrides={"fm_grace": 300},
            )
            assert fm_only.ids.kitnet.fm_grace == 300
            assert fm_only.ids.kitnet.ad_grace == 700

            ad_only = build_streaming_detector(
                "kitsune", warmup_packets=1000,
                ids_overrides={"ad_grace": 650},
            )
            assert ad_only.ids.kitnet.fm_grace == 350
            assert ad_only.ids.kitnet.ad_grace == 650

    def test_grace_exceeding_warmup_warns(self):
        import warnings

        from repro.stream import build_streaming_detector

        # Both pinned past the prefix: respected, but loudly.
        with pytest.warns(RuntimeWarning, match="exceed"):
            detector = build_streaming_detector(
                "kitsune", warmup_packets=500,
                ids_overrides={"fm_grace": 400, "ad_grace": 400},
            )
        assert detector.ids.kitnet.fm_grace == 400
        assert detector.ids.kitnet.ad_grace == 400

        # A single override so large the other floors at 100 and the
        # total still spills past the prefix.
        with pytest.warns(RuntimeWarning, match="exceed"):
            floored = build_streaming_detector(
                "kitsune", warmup_packets=300,
                ids_overrides={"fm_grace": 280},
            )
        assert floored.ids.kitnet.ad_grace == 100

        # The well-scaled default split must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_streaming_detector("kitsune", warmup_packets=1000)

    def test_pcap_mode_supervised_ids_is_a_clean_error(self, tmp_path, capsys):
        from repro.datasets import generate_dataset

        pcap = tmp_path / "tiny.pcap"
        generate_dataset("Mirai", seed=0, scale=0.02).to_pcap(pcap)
        code = main([
            "stream", "--ids", "dnn", "--pcap", str(pcap),
            "--threshold", "0.5", "--train-packets", "100", "--quiet",
        ])
        assert code == 2
        assert "supervised" in capsys.readouterr().err

    def test_zero_warmup_works_for_training_free_ids(self):
        from repro.stream import (
            DatasetSource, build_streaming_detector, stream_capture,
        )

        detector = build_streaming_detector("slips", batch_size=64)
        report = stream_capture(
            DatasetSource("Mirai", seed=0, scale=0.02),
            detector,
            warmup_packets=0,
            threshold=0.5,
            window_seconds=600.0,
        )
        assert report.n_warmup == 0
        assert report.n_scored > 0

    def test_unknown_ids_is_a_clean_error(self, capsys):
        code = main(["stream", "--ids", "nonsense"])
        assert code == 2
        assert "unknown IDS" in capsys.readouterr().err

    def test_unknown_dataset_is_a_clean_error(self, capsys):
        code = main(["stream", "--ids", "Slips", "--dataset", "nope"])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_flow_ids_stream(self, tmp_path, capsys):
        out = tmp_path / "slips.json"
        code = main([
            "stream", "--ids", "slips", "--dataset", "Mirai",
            "--scale", "0.03", "--window", "10m", "--json", str(out),
            "--quiet",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["unit"] == "flow"
        assert payload["window_seconds"] == 600.0
