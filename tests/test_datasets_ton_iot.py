"""Tests for the ToN-IoT emulation and its registry wiring."""

import pytest

from repro.datasets import EXCLUDED_DATASETS, generate_dataset
from repro.datasets.registry import EXTRA_DATASETS


class TestTonIot:
    def test_reachable_by_name(self):
        dataset = generate_dataset("ToN-IoT", seed=0, scale=0.05)
        assert dataset.name == "ToN-IoT"
        assert len(dataset) > 200

    def test_registered_as_extra_not_used(self):
        assert "ToN-IoT" in EXTRA_DATASETS
        info = next(i for i in EXCLUDED_DATASETS if i.name == "ToN-IoT")
        assert not info.used
        assert "BoT-IoT" in info.exclusion_reason

    def test_mixed_attack_palette(self):
        dataset = generate_dataset("ToN-IoT", seed=0, scale=0.1)
        families = set(dataset.attack_type_counts())
        # Broader than BoT-IoT: includes credential and web attacks.
        assert "bruteforce-ssh" in families
        assert "web-attack" in families
        assert any("flood" in f for f in families)

    def test_less_extreme_balance_than_bot_iot(self):
        ton = generate_dataset("ToN-IoT", seed=0, scale=0.05)
        bot = generate_dataset("BoT-IoT", seed=0, scale=0.05)
        assert ton.attack_prevalence < bot.attack_prevalence

    def test_deterministic(self):
        a = generate_dataset("ToN-IoT", seed=3, scale=0.05)
        b = generate_dataset("ToN-IoT", seed=3, scale=0.05)
        assert len(a) == len(b)
        assert a.labels[:100] == b.labels[:100]

    def test_flows_and_schema(self):
        dataset = generate_dataset("ToN-IoT", seed=1, scale=0.05)
        assert dataset.flows()
        assert "sload" in dataset.provided_flow_features
