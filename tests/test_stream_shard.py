"""Shard assignment: the flow-consistency invariant, property-tested.

Sharded streaming is only semantics-preserving if every packet of a
conversation lands on the same worker, the assignment is identical in
every process, and splitting a stream across any worker count neither
loses nor duplicates packets. These are exactly the properties below.
"""

from __future__ import annotations

import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.arp import ARPHeader
from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.net.packet import Packet
from repro.stream.shard import (
    KEY_KIND_IP,
    KEY_KIND_MAC,
    KEY_KIND_NONE,
    shard_for_packet,
    shard_key_for_packet,
    shard_of_key,
)

from tests.conftest import make_tcp_packet, make_udp_packet

REPO_SRC = Path(__file__).parent.parent / "src"

ips = st.builds(
    "{}.{}.{}.{}".format,
    *(st.integers(0, 255) for _ in range(4)),
)
ports = st.integers(0, 65535)
macs = st.builds(
    "00:11:22:{:02x}:{:02x}:{:02x}".format,
    *(st.integers(0, 255) for _ in range(3)),
)
worker_counts = st.integers(1, 16)


class TestFlowConsistency:
    @settings(max_examples=200)
    @given(src=ips, dst=ips, sport=ports, dport=ports, n=worker_counts)
    def test_both_directions_of_any_5tuple_same_shard(
            self, src, dst, sport, dport, n):
        forward = make_tcp_packet(src=src, dst=dst, sport=sport,
                                  dport=dport)
        reverse = make_tcp_packet(src=dst, dst=src, sport=dport,
                                  dport=sport)
        assert shard_for_packet(forward, n) == shard_for_packet(reverse, n)

    @settings(max_examples=100)
    @given(src=ips, dst=ips, sport=ports, dport=ports, n=worker_counts)
    def test_tcp_and_udp_of_same_hosts_share_a_shard(
            self, src, dst, sport, dport, n):
        # The key is the channel, deliberately coarser than the
        # 5-tuple: all sockets of a host pair stay together.
        tcp = make_tcp_packet(src=src, dst=dst, sport=sport, dport=dport)
        udp = make_udp_packet(src=src, dst=dst, sport=dport, dport=sport)
        assert shard_for_packet(tcp, n) == shard_for_packet(udp, n)

    @settings(max_examples=100)
    @given(src=ips, dst=ips, n=worker_counts)
    def test_arp_keys_on_sender_target_ips_both_directions(
            self, src, dst, n):
        request = Packet(
            timestamp=0.0,
            ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
            arp=ARPHeader(sender_ip=src, target_ip=dst),
        )
        reply = Packet(
            timestamp=0.1,
            ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
            arp=ARPHeader(sender_ip=dst, target_ip=src),
        )
        assert shard_key_for_packet(request)[0] == KEY_KIND_IP
        assert shard_for_packet(request, n) == shard_for_packet(reply, n)
        # ARP about the same hosts rides with their IP traffic.
        ip_packet = make_tcp_packet(src=src, dst=dst)
        assert shard_for_packet(request, n) == shard_for_packet(
            ip_packet, n)

    @settings(max_examples=100)
    @given(src=macs, dst=macs, n=worker_counts)
    def test_bare_l2_frames_fall_back_to_mac_pair(self, src, dst, n):
        forward = Packet(timestamp=0.0,
                         ether=EthernetHeader(src_mac=src, dst_mac=dst))
        reverse = Packet(timestamp=0.1,
                         ether=EthernetHeader(src_mac=dst, dst_mac=src))
        assert shard_key_for_packet(forward)[0] == KEY_KIND_MAC
        assert shard_for_packet(forward, n) == shard_for_packet(reverse, n)

    def test_headerless_packet_has_the_constant_key(self):
        bare = Packet(timestamp=0.0)
        assert shard_key_for_packet(bare) == (KEY_KIND_NONE, "", "")
        assert shard_for_packet(bare, 7) == shard_for_packet(
            Packet(timestamp=9.0), 7)


class TestPartition:
    @settings(max_examples=50)
    @given(
        seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=60),
        n=worker_counts,
    )
    def test_no_loss_no_duplication_at_any_worker_count(self, seeds, n):
        packets = [
            make_udp_packet(ts=float(i), src=f"10.1.{seed % 200}.1",
                            dst=f"10.1.{seed % 200}.2")
            for i, seed in enumerate(seeds)
        ]
        shards: dict[int, list] = {w: [] for w in range(n)}
        for packet in packets:
            worker = shard_for_packet(packet, n)
            assert 0 <= worker < n
            shards[worker].append(packet.timestamp)
        merged = Counter(ts for rows in shards.values() for ts in rows)
        assert merged == Counter(p.timestamp for p in packets)

    @settings(max_examples=100)
    @given(a=ips, b=ips, n=worker_counts)
    def test_assignment_is_pure(self, a, b, n):
        key = (KEY_KIND_IP, *sorted((a, b)))
        assert shard_of_key(key, n) == shard_of_key(key, n)

    def test_invalid_worker_counts_raise(self):
        with pytest.raises(ValueError):
            shard_of_key((KEY_KIND_IP, "1.1.1.1", "2.2.2.2"), 0)
        with pytest.raises(ValueError):
            shard_of_key((KEY_KIND_IP, "1.1.1.1", "2.2.2.2"), -3)

    def test_single_shard_takes_everything(self):
        assert shard_of_key((KEY_KIND_IP, "1.1.1.1", "2.2.2.2"), 1) == 0


class TestCrossProcessDeterminism:
    def test_assignment_identical_in_a_fresh_interpreter(self):
        # hash() is per-process salted; the shard hash must not be.
        # A fresh interpreter (fresh hash salt) must agree bit for bit.
        pairs = [
            ("10.0.0.1", "10.0.0.2"),
            ("192.168.7.9", "172.16.0.4"),
            ("255.255.255.255", "0.0.0.0"),
            ("8.8.8.8", "1.1.1.1"),
        ]
        local = [
            shard_of_key((KEY_KIND_IP, *sorted(pair)), n)
            for pair in pairs for n in (2, 3, 8)
        ]
        script = (
            "from repro.stream.shard import shard_of_key\n"
            f"pairs = {pairs!r}\n"
            "out = [shard_of_key(('ip', *sorted(p)), n)"
            " for p in pairs for n in (2, 3, 8)]\n"
            "print(out)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"},
        )
        assert result.returncode == 0, result.stderr
        assert eval(result.stdout.strip()) == local
