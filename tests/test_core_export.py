"""Tests for JSON/markdown result exports."""

import json

import pytest

from repro.core.export import results_to_dict, results_to_json, results_to_markdown
from repro.core.pipeline import IDSAnalysisPipeline


@pytest.fixture(scope="module")
def pipeline():
    p = IDSAnalysisPipeline(
        seed=0, scale=0.05,
        ids_names=("Slips",),
        dataset_names=("Mirai", "Stratosphere"),
    )
    p.run_all()
    return p


class TestJsonExport:
    def test_roundtrips_through_json(self, pipeline):
        payload = json.loads(results_to_json(pipeline))
        assert payload["seed"] == 0
        assert len(payload["cells"]) == 2

    def test_cells_carry_provenance(self, pipeline):
        payload = results_to_dict(pipeline)
        cell = payload["cells"][0]
        assert {"ids", "dataset", "f1", "threshold", "threshold_strategy",
                "notes"} <= set(cell)
        assert cell["tp"] + cell["fp"] + cell["tn"] + cell["fn"] > 0

    def test_average_f1_present(self, pipeline):
        payload = results_to_dict(pipeline)
        assert "Slips" in payload["average_f1"]

    def test_notes_are_serialisable(self, pipeline):
        # tuples (e.g. missing_features) must become lists.
        json.dumps(results_to_dict(pipeline))


class TestMarkdownExport:
    def test_structure(self, pipeline):
        md = results_to_markdown(pipeline)
        assert "### Slips" in md
        assert "| Dataset | Acc. | Prec. | Rec. | F1 |" in md
        assert "**Average**" in md
        assert "Mirai" in md and "Stratosphere" in md
