"""Tests for JSON/markdown result exports."""

import json

import pytest

from repro.core.export import results_to_dict, results_to_json, results_to_markdown
from repro.core.pipeline import IDSAnalysisPipeline


@pytest.fixture(scope="module")
def pipeline():
    p = IDSAnalysisPipeline(
        seed=0, scale=0.05,
        ids_names=("Slips",),
        dataset_names=("Mirai", "Stratosphere"),
    )
    p.run_all()
    return p


class TestJsonExport:
    def test_roundtrips_through_json(self, pipeline):
        payload = json.loads(results_to_json(pipeline))
        assert payload["seed"] == 0
        assert len(payload["cells"]) == 2

    def test_cells_carry_provenance(self, pipeline):
        payload = results_to_dict(pipeline)
        cell = payload["cells"][0]
        assert {"ids", "dataset", "f1", "threshold", "threshold_strategy",
                "notes"} <= set(cell)
        assert cell["tp"] + cell["fp"] + cell["tn"] + cell["fn"] > 0

    def test_average_f1_present(self, pipeline):
        payload = results_to_dict(pipeline)
        assert "Slips" in payload["average_f1"]

    def test_notes_are_serialisable(self, pipeline):
        # tuples (e.g. missing_features) must become lists.
        json.dumps(results_to_dict(pipeline))


class TestMarkdownExport:
    def test_structure(self, pipeline):
        md = results_to_markdown(pipeline)
        assert "### Slips" in md
        assert "| Dataset | Acc. | Prec. | Rec. | F1 |" in md
        assert "**Average**" in md
        assert "Mirai" in md and "Stratosphere" in md


class TestSweepExport:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.runner import ExperimentEngine
        from repro.runner.sweep import sweep_matrix

        return sweep_matrix(
            ("Slips",), ("Mirai",), seeds=(0, 1), scale=0.05,
            engine=ExperimentEngine(),
        )

    def test_sweep_to_dict_shape(self, sweep):
        from repro.core.export import sweep_to_dict

        payload = sweep_to_dict(sweep)
        assert payload["ids"] == ["Slips"]
        assert payload["seeds"] == [0, 1]
        assert payload["scale"] == 0.05
        (cell,) = payload["cells"]
        assert cell["ids"] == "Slips" and cell["dataset"] == "Mirai"
        for metric in ("accuracy", "precision", "recall", "f1"):
            dist = cell["metrics"][metric]
            assert {"mean", "std", "min", "max", "values"} <= set(dist)
            assert len(dist["values"]) == 2
        assert len(cell["per_seed"]) == 2
        assert cell["per_seed"][0]["seed"] == 0
        # The per-IDS average row is present for complete rows.
        assert "Slips" in payload["averages"]

    def test_sweep_json_roundtrip(self, sweep):
        from repro.core.export import sweep_to_dict, sweep_to_json

        assert json.loads(sweep_to_json(sweep)) == sweep_to_dict(sweep)

    def test_cell_sweep_to_dict(self, sweep):
        from repro.core.export import cell_sweep_to_dict

        payload = cell_sweep_to_dict(sweep.cell("Slips", "Mirai"))
        assert payload["seeds"] == [0, 1]
        assert payload["metrics"]["f1"]["mean"] == pytest.approx(
            sweep.cell("Slips", "Mirai").f1.mean
        )
