"""Obs integration across the stream, sharded, runner and ML layers.

The acceptance contract for the observability layer: instrumented runs
record what actually happened (per-worker packet counters sum exactly
to the single-process packet count), run ids stamp every artifact, the
exporter seam works end to end through the CLI, and disabled-by-default
means no snapshots and no metric noise.
"""

from __future__ import annotations

import json

from repro import obs
from repro.cli import main
from repro.stream.sources import ListSource
from repro.stream.service import stream_capture

from tests.faultinject import (
    ChannelMeanDetector,
    FaultInjection,
    conversation_packets,
    run_sharded,
)


# -- in-process stream ------------------------------------------------------

class TestStreamCaptureObs:
    def test_exporter_enables_and_counts_packets(self, tmp_path):
        packets = conversation_packets()
        path = tmp_path / "metrics.jsonl"
        with obs.SnapshotExporter(path, interval_seconds=3600,
                                  source="stream") as exporter:
            report = stream_capture(
                ListSource(packets), ChannelMeanDetector(),
                warmup_packets=64, window_seconds=5.0,
                exporter=exporter,
            )
        snapshots = obs.read_snapshots(path)
        assert snapshots, "final export must always write one snapshot"
        last = snapshots[-1]
        assert last["counters"]["stream.packets_streamed"] == (
            report.packets_streamed
        )
        assert last["counters"]["stream.items_scored"] == report.n_scored
        assert last["gauges"]["stream.warmup_items"] == 64
        assert "stream.warmup" in last["spans"]
        assert last["source"] == "stream"
        assert report.notes["run_id"] == obs.run_id()
        assert last["run_id"] == report.notes["run_id"]

    def test_disabled_run_records_nothing(self):
        packets = conversation_packets()
        report = stream_capture(
            ListSource(packets), ChannelMeanDetector(),
            warmup_packets=64, window_seconds=5.0,
        )
        assert not obs.is_enabled()
        snap = obs.get_registry().snapshot()
        assert "stream.packets_streamed" not in snap["counters"]
        assert snap["spans"] == {}
        # run_id is stamped regardless: it identifies the invocation.
        assert report.notes["run_id"] == obs.run_id()


# -- sharded stream ---------------------------------------------------------

class TestShardedObs:
    def test_worker_tree_packets_sum_to_single_process_run(self, tmp_path):
        packets = conversation_packets()
        path = tmp_path / "metrics.jsonl"

        single = stream_capture(
            ListSource(packets), ChannelMeanDetector(),
            warmup_packets=64, window_seconds=5.0,
        )
        with obs.SnapshotExporter(path, interval_seconds=3600,
                                  source="stream-sharded") as exporter:
            report = run_sharded(packets, workers=2, exporter=exporter)

        last = obs.read_snapshots(path)[-1]
        workers = last["workers"]
        assert set(workers) == {"0", "1"}
        per_worker = [
            snap["counters"]["stream.worker.packets"]
            for snap in workers.values()
        ]
        assert sum(per_worker) == single.packets_streamed
        assert sum(per_worker) == report.packets_streamed
        assert last["merged"]["counters"]["stream.worker.packets"] == (
            report.packets_streamed
        )
        assert last["merged"]["counters"]["stream.worker.items_scored"] == (
            report.n_scored
        )
        # Workers reset inherited registries: supervisor-side counters
        # must not appear in worker snapshots.
        for snap in workers.values():
            assert "stream.shard.packets_dispatched" not in snap["counters"]
        # Supervisor-side counters sit at the snapshot top level.
        assert last["counters"]["stream.shard.packets_dispatched"] == (
            report.packets_streamed
        )
        assert last["gauges"]["stream.shard.workers_n"] == 2

    def test_counters_exact_across_crash_resume(self, tmp_path):
        packets = conversation_packets()
        path = tmp_path / "metrics.jsonl"
        with obs.SnapshotExporter(path, interval_seconds=3600,
                                  source="stream-sharded") as exporter:
            report = run_sharded(
                packets, workers=2, exporter=exporter,
                fault=FaultInjection(worker=0, at_packets=120,
                                     action="kill"),
            )
        assert report.notes["workers"][0]["restarts"] == 1
        last = obs.read_snapshots(path)[-1]
        per_worker = [
            snap["counters"]["stream.worker.packets"]
            for snap in last["workers"].values()
        ]
        # Baselined restart counters: replayed packets are not double
        # counted, so the merged total still equals packets streamed.
        assert sum(per_worker) == report.packets_streamed

    def test_zero_packet_shard_reports_null_pps(self):
        # One channel, many workers: every shard but one stays empty.
        packets = conversation_packets(channels=1, packets_per_channel=80)
        report = run_sharded(packets, workers=3, warmup_packets=16)
        rows = {row["worker"]: row for row in report.notes["workers"]}
        idle = [row for row in rows.values() if row["packets"] == 0]
        busy = [row for row in rows.values() if row["packets"] > 0]
        assert idle and busy, "expected both idle and busy shards"
        for row in idle:
            assert row["pps"] is None, (
                "zero-packet shard must report pps=None, not 0.0"
            )
        for row in busy:
            assert row["pps"] > 0

    def test_notes_keep_run_id_and_send_stalls_int(self):
        packets = conversation_packets(packets_per_channel=20)
        report = run_sharded(packets, workers=2, warmup_packets=16)
        assert isinstance(report.notes["send_stalls"], int)
        assert report.notes["run_id"] == obs.run_id()


# -- CLI --------------------------------------------------------------------

class TestCliMetricsFlow:
    def test_stream_metrics_out_and_obs_report(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        code = main([
            "stream", "--workers", "2", "--scale", "0.02", "--quiet",
            "--metrics-out", str(metrics), "--metrics-interval", "1s",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert str(metrics) in out
        snapshots = obs.read_snapshots(metrics)
        assert snapshots[-1]["source"] == "stream-sharded"
        assert "workers" in snapshots[-1]

        assert main(["obs-report", str(metrics)]) == 0
        rendered = capsys.readouterr().out
        assert "obs snapshot" in rendered
        assert "merged across workers" in rendered

        assert main(["obs-report", "--prom", str(metrics)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_stream_worker_packets counter" in prom

        assert main(["obs-report", str(metrics), str(metrics)]) == 0
        assert "obs diff" in capsys.readouterr().out

    def test_obs_report_rejects_bad_input(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs-report", str(missing)]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs-report", str(empty)]) == 2
        three = [str(empty)] * 3
        assert main(["obs-report", *three]) == 2
        capsys.readouterr()


# -- runner + ML ------------------------------------------------------------

class TestRunnerAndMlObs:
    def test_engine_records_cache_counters_unconditionally(self, tmp_path):
        from repro.runner.engine import ExperimentEngine

        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run_matrix(["Kitsune"], ["Mirai"], scale=0.02)
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["runner.cells_total"] == 1
        assert snap["histograms"]["runner.cell_wall_seconds"]["count"] == 1
        first_run_id = engine.last_telemetry.run_id
        assert first_run_id == obs.run_id()

        # Second run: whole-cell reuse shows up as a result-cache hit.
        engine2 = ExperimentEngine(cache_dir=tmp_path)
        engine2.run_matrix(["Kitsune"], ["Mirai"], scale=0.02)
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["runner.cells_total"] == 2
        assert snap["counters"]["runner.result_cache_hits"] == 1

    def test_kitnet_training_metrics_gated(self):
        import numpy as np

        from repro.ids.kitsune.kitnet import KitNET
        from repro.utils.rng import SeededRNG

        rows = SeededRNG(7, "obs-test").random((260, 8))

        def run():
            net = KitNET(8, fm_grace=50, ad_grace=150,
                         rng=SeededRNG(7, "kitnet"))
            for row in rows:
                net.process(row)
            return net

        run()  # disabled: nothing recorded
        snap = obs.get_registry().snapshot()
        assert "ml.kitnet.rows_trained" not in snap["counters"]

        obs.enable()
        net = run()
        snap = obs.get_registry().snapshot()
        # The online reference trains on ad_grace - 1 rows: the row
        # that reaches the grace boundary itself goes through execute.
        assert snap["counters"]["ml.kitnet.rows_trained"] == 149
        assert snap["gauges"]["ml.kitnet.grace_progress"] == 149 / 150
        assert snap["gauges"]["ml.kitnet.ensemble_groups"] >= 1
        assert snap["counters"].get("ml.kitnet.batched_builds", 0) == 0

        # Batched execute after training builds the packed ensemble.
        net.execute_batch(np.asarray(rows[:16]))
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["ml.kitnet.batched_builds"] == 1


class TestBenchJsonObs:
    def test_save_bench_json_embeds_obs_snapshot(self, tmp_path,
                                                 monkeypatch, capsys):
        import benchmarks.conftest as bench_conftest

        monkeypatch.setattr(bench_conftest, "REPO_ROOT", tmp_path)
        obs.counter("runner.cells_total").inc(3)
        bench_conftest.save_bench_json("smoke", "value_metric", 1.25,
                                       scale=0.1)
        payload = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert payload["run_id"] == obs.run_id()
        assert payload["obs"]["counters"]["runner.cells_total"] == 3
        assert payload["obs"]["cpu_count"] >= 1
        capsys.readouterr()
