"""Documentation honesty checks (the CI docs job, as tier-1 tests).

README.md and docs/*.md must stay truthful: python blocks compile,
every documented ``repro-cli`` command parses against the real
``build_parser()``, and relative links resolve.
"""

from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.utils.doccheck import (
    check_documents,
    check_file,
    check_shell_block,
    default_documents,
    extract_code_blocks,
)

ROOT = Path(__file__).resolve().parent.parent


class TestRepositoryDocs:
    def test_front_door_documents_exist(self):
        for name in ("README.md", "docs/ARCHITECTURE.md", "docs/CLI.md",
                     "docs/RUNNER.md"):
            assert (ROOT / name).is_file(), f"{name} is missing"

    def test_all_documents_pass_doccheck(self):
        documents = default_documents(ROOT)
        assert len(documents) >= 4
        issues = check_documents(documents, ROOT)
        assert not issues, "\n".join(str(i) for i in issues)

    def test_readme_quickstart_commands_parse(self):
        """The README quickstart must parse via build_parser(): the
        sweep command with its documented flags, in particular."""
        text = (ROOT / "README.md").read_text()
        commands = [
            code
            for language, _, code in extract_code_blocks(text)
            if language == "bash" and "table4-sweep" in code
        ]
        assert commands, "README quickstart lost its table4-sweep example"
        args = build_parser().parse_args(
            ["table4-sweep", "--seeds", "3", "--scale", "0.1", "--jobs", "2"]
        )
        assert (args.seeds, args.scale, args.jobs) == (3, 0.1, 2)


class TestDoccheckCatchesRot:
    def test_flags_unknown_cli_option(self, tmp_path):
        issues = check_shell_block(
            "doc.md", 1, "repro-cli table4 --no-such-flag"
        )
        assert len(issues) == 1
        assert "does not parse" in issues[0].message

    def test_flags_python_syntax_error(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        issues = check_file(doc, tmp_path)
        assert any("does not compile" in i.message for i in issues)

    def test_flags_broken_link(self, tmp_path):
        doc = tmp_path / "links.md"
        doc.write_text("see [missing](no/such/file.md)\n")
        issues = check_file(doc, tmp_path)
        assert any("broken link" in i.message for i in issues)

    def test_ignores_non_cli_lines_and_env_prefixes(self, tmp_path):
        block = "\n".join([
            "# a comment",
            "pip install -e .",
            "PYTHONPATH=src python -m repro.cli tables",
            "PYTHONPATH=src python -m pytest -x -q",
        ])
        assert check_shell_block("doc.md", 1, block) == []

    def test_skip_marker_respected(self):
        block = "repro-cli table4 --no-such-flag  # doccheck: skip"
        assert check_shell_block("doc.md", 1, block) == []
