"""Batched KitNET execution: bit-for-bit parity with the per-row loop.

The packed :class:`~repro.ml.batched.BatchedEnsemble` and every
``*_batch`` surface above it (``Autoencoder.score_batch``,
``KitNET.execute_batch``/``process_batch``, ``Kitsune.score_batch``,
``HELAD.score_batch``) must agree with the per-packet reference
*exactly* — batching is a throughput knob, never a semantic one.

A golden fixture pins the KitNET score trajectory for a seeded stream.
Unlike the NetStat golden (pure libm ``pow``/``hypot``), these scores
pass through ``np.exp``, whose SIMD paths may differ in the last ulp
across CPU generations — so the golden compare allows a relative
tolerance of 1e-9 while all in-process parity checks stay exact.
Regenerate after an intentional semantic change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src pytest tests/test_ml_batched.py
"""

from __future__ import annotations

import copy
import os
from pathlib import Path

import numpy as np
import pytest

from repro.ids.kitsune.kitnet import KitNET
from repro.ml.autoencoder import Autoencoder
from repro.ml.batched import BatchedEnsemble
from repro.utils.rng import SeededRNG

GOLDEN_PATH = Path(__file__).parent / "golden" / "kitnet_scores.npz"


def _stream(n: int, dim: int, seed: int = 11) -> np.ndarray:
    """A deterministic feature stream with a regime shift at the end,
    so execute-phase scores are non-trivial."""
    rng = SeededRNG(seed, "batched-stream")
    calm = rng.uniform(0.2, 0.8, size=(n - n // 5, dim))
    loud = rng.uniform(2.0, 6.0, size=(n // 5, dim))
    return np.vstack([calm, loud])


def _kitnet(dim: int = 24, fm: int = 40, ad: int = 160) -> KitNET:
    return KitNET(
        dim, fm_grace=fm, ad_grace=ad, max_group=5, rng=SeededRNG(4)
    )


class TestAutoencoderScoreBatch:
    def test_score_batch_bit_identical_to_score_loop(self):
        rng = SeededRNG(21)
        ae = Autoencoder(9, rng=rng.child("ae"))
        for _ in range(50):
            ae.train_score(rng.uniform(size=9))
        rows = rng.uniform(-0.5, 1.5, size=(37, 9))
        batch = ae.score_batch(rows)
        singles = np.array([ae.score(row) for row in rows])
        assert np.array_equal(batch, singles)


class TestBatchedEnsemble:
    def _trained(self, n=400):
        net = _kitnet()
        for row in _stream(n, 24):
            net.process(row)
        assert not (net.in_feature_mapping or net.in_training)
        return net

    def test_group_rmses_match_per_row_scores(self):
        net = self._trained()
        packed = BatchedEnsemble(
            net.ensemble, net._group_arrays(), net.output_layer
        )
        rng = SeededRNG(31)
        scaled = net.scaler.transform(rng.uniform(0.0, 2.0, size=(25, 24)))
        batched = packed.group_rmses(scaled)
        for n, row in enumerate(scaled):
            for g, group in enumerate(net._group_arrays()):
                assert batched[n, g] == net.ensemble[g].score(row[group])

    def test_rejects_mismatched_shapes(self):
        net = self._trained()
        with pytest.raises(ValueError, match="groups"):
            BatchedEnsemble(net.ensemble[:-1], net._group_arrays(),
                            net.output_layer)
        wrong_output = Autoencoder(
            len(net.ensemble) + 1, rng=SeededRNG(8, "wrong")
        )
        with pytest.raises(ValueError, match="output layer"):
            BatchedEnsemble(net.ensemble, net._group_arrays(), wrong_output)


class TestProcessBatchParity:
    @pytest.mark.parametrize("batch_size", (1, 2, 7, 64))
    def test_bit_identical_across_grace_boundaries(self, batch_size):
        """Micro-batched processing spans fm -> train -> execute (the
        grace boundaries land mid-batch for most sizes) and must match
        the per-row reference bit for bit."""
        rows = _stream(500, 24)
        reference = _kitnet()
        expected = np.array([reference.process(row) for row in rows])

        net = _kitnet()
        got = np.concatenate([
            net.process_batch(rows[i : i + batch_size])
            for i in range(0, len(rows), batch_size)
        ])
        assert np.array_equal(got, expected)
        assert net.samples_seen == reference.samples_seen

    def test_single_call_spanning_all_phases(self):
        rows = _stream(500, 24)
        reference = _kitnet()
        expected = np.array([reference.process(row) for row in rows])
        net = _kitnet()
        assert np.array_equal(net.process_batch(rows), expected)

    def test_score_matrix_delegates_to_batched_path(self):
        rows = _stream(400, 24)
        reference = _kitnet()
        expected = np.array([reference.process(row) for row in rows])
        assert np.array_equal(_kitnet().score_matrix(rows), expected)

    def test_execute_batch_rejects_grace_period_rows(self):
        net = _kitnet()
        with pytest.raises(RuntimeError, match="grace"):
            net.execute_batch(np.zeros((3, 24)))

    def test_empty_batch(self):
        net = _kitnet()
        assert net.process_batch(np.empty((0, 24))).shape == (0,)


class TestPackedInvalidation:
    def test_train_step_invalidates_packed_tensors(self):
        """A further train step (continual-learning style) must drop
        the packed snapshot so batched scores track the new weights."""
        rows = _stream(500, 24)
        net = _kitnet()
        net.process_batch(rows)
        assert net._batched_ensemble is not None
        stale = net._batched_ensemble

        net._train_step(rows[-1])
        assert net._batched_ensemble is None

        fresh = np.array(3 * [rows[-2]])
        twin = copy.deepcopy(net)
        expected = np.array([twin.process(row) for row in fresh])
        assert np.array_equal(net.execute_batch(fresh), expected)
        assert net._batched_ensemble is not stale

    def test_pack_is_lazy(self):
        net = _kitnet()
        for row in _stream(500, 24):
            net.process(row)
        assert net._batched_ensemble is None  # per-row path never packs


class TestGoldenScores:
    def test_scores_match_golden(self):
        rows = _stream(600, 24, seed=13)
        scores = _kitnet().process_batch(rows)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            np.savez_compressed(GOLDEN_PATH, scores=scores)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        if not GOLDEN_PATH.exists():
            pytest.fail(
                "golden fixture missing; regenerate with REPRO_REGEN_GOLDEN=1"
            )
        golden = np.load(GOLDEN_PATH)["scores"]
        assert golden.shape == scores.shape == (600,)
        np.testing.assert_allclose(golden, scores, rtol=1e-9)


class TestPacketIDSBatchSurface:
    def _packets(self, n=1200):
        from tests.conftest import make_udp_packet

        benign = [
            make_udp_packet(float(i) * 0.4, sport=5000, payload=b"x" * 64)
            for i in range(n - 200)
        ]
        flood = [
            make_udp_packet(400.0 + i * 0.001, src="66.6.6.6",
                            sport=1024 + i, dport=80,
                            payload=b"z" * 512, label=1)
            for i in range(200)
        ]
        return benign + flood

    def test_registry_advertises_batch_capability(self):
        from repro.ids.registry import batch_capable_ids

        assert batch_capable_ids() == {
            "Kitsune": True, "HELAD": True, "DNN": False, "Slips": False,
        }

    def test_kitsune_score_batch_bit_identical(self):
        from repro.ids.kitsune import Kitsune

        packets = self._packets()
        a = Kitsune(fm_grace=100, ad_grace=500, seed=0)
        b = Kitsune(fm_grace=100, ad_grace=500, seed=0)
        a.fit(packets[:700])
        b.fit(packets[:700])
        assert np.array_equal(
            b.score_batch(packets[700:]), a.anomaly_scores(packets[700:])
        )

    def test_helad_score_batch_bit_identical(self):
        from repro.ids.helad import HELAD

        packets = self._packets()
        a = HELAD(seed=0)
        b = HELAD(seed=0)
        a.fit(packets[:700])
        b.fit(packets[:700])
        # Two consecutive calls also exercise the score-history carry.
        assert np.array_equal(
            b.score_batch(packets[700:1000]),
            a.anomaly_scores(packets[700:1000]),
        )
        assert np.array_equal(
            b.score_batch(packets[1000:]), a.anomaly_scores(packets[1000:])
        )

    def test_default_score_batch_falls_back_to_reference(self):
        from repro.ids.base import PacketIDS

        class Dummy(PacketIDS):
            name = "Dummy"

            def fit(self, packets):
                pass

            def anomaly_scores(self, packets):
                return np.zeros(len(packets))

        dummy = Dummy()
        assert not dummy.supports_batch
        assert np.array_equal(dummy.score_batch([None] * 3), np.zeros(3))

    def test_streaming_detector_reports_batched_path(self):
        from repro.ids.kitsune import Kitsune
        from repro.stream.detector import PacketStreamDetector

        detector = PacketStreamDetector(
            Kitsune(fm_grace=100, ad_grace=400, seed=0), batch_size=64
        )
        assert detector.scoring_path == "batched"
        packets = self._packets(800)
        detector.warmup(packets[:600])
        emitted = []
        for packet in packets[600:]:
            emitted.extend(detector.process(packet))
        emitted.extend(detector.finish())
        assert len(emitted) == 200
