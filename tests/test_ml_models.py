"""Tests for the autoencoder, LSTM and MLP models."""

import numpy as np
import pytest

from repro.ml.autoencoder import Autoencoder
from repro.ml.lstm import LSTMRegressor
from repro.ml.mlp import MLPClassifier
from repro.utils.rng import SeededRNG


class TestAutoencoder:
    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Autoencoder(0, rng=SeededRNG(1))

    def test_hidden_dim_ratio(self):
        ae = Autoencoder(10, hidden_ratio=0.5, rng=SeededRNG(1))
        assert ae.hidden_dim == 5

    def test_training_reduces_reconstruction_error(self):
        rng = SeededRNG(2)
        ae = Autoencoder(6, rng=rng.child("ae"))
        data = rng.uniform(0.3, 0.7, size=(500, 6))
        early = np.mean([ae.train_score(row) for row in data[:50]])
        for row in data[50:]:
            ae.train_score(row)
        late = ae.score_batch(data[:50]).mean()
        assert late < early

    def test_anomaly_scores_higher_than_normal(self):
        rng = SeededRNG(3)
        ae = Autoencoder(8, rng=rng.child("ae"))
        for _ in range(400):
            ae.train_score(rng.uniform(0.45, 0.55, size=8))
        normal = ae.score(rng.uniform(0.45, 0.55, size=8))
        anomaly = ae.score(np.zeros(8))
        assert anomaly > 2 * normal

    def test_score_does_not_train(self):
        rng = SeededRNG(4)
        ae = Autoencoder(4, rng=rng.child("ae"))
        row = rng.uniform(size=4)
        before = ae.score(row)
        for _ in range(10):
            ae.score(row)
        assert ae.score(row) == pytest.approx(before)
        assert ae.samples_trained == 0

    def test_score_batch_matches_score(self):
        rng = SeededRNG(5)
        ae = Autoencoder(4, rng=rng.child("ae"))
        rows = rng.uniform(size=(3, 4))
        batch = ae.score_batch(rows)
        singles = [ae.score(row) for row in rows]
        np.testing.assert_allclose(batch, singles, rtol=1e-12)


class TestLSTM:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            LSTMRegressor(input_dim=0, rng=SeededRNG(1))

    def test_learns_constant_series(self):
        lstm = LSTMRegressor(hidden_dim=8, rng=SeededRNG(6))
        series = np.full(200, 0.7)
        errors = [
            lstm.train_window(series[i - 8 : i], series[i])
            for i in range(8, 200)
        ]
        assert np.mean(errors[-30:]) < np.mean(errors[:30])
        assert lstm.predict_window(series[:8]) == pytest.approx(0.7, abs=0.15)

    def test_learns_periodic_series(self):
        lstm = LSTMRegressor(hidden_dim=12, learning_rate=0.05,
                             rng=SeededRNG(7))
        t = np.arange(600) * 0.4
        series = 0.5 + 0.3 * np.sin(t)
        errors = [
            lstm.train_window(series[i - 10 : i], series[i])
            for i in range(10, 600)
        ]
        assert np.mean(errors[-50:]) < 0.5 * np.mean(errors[:50])

    def test_window_shape_validation(self):
        lstm = LSTMRegressor(input_dim=2, rng=SeededRNG(8))
        with pytest.raises(ValueError, match="feature dim"):
            lstm.predict_window(np.zeros((5, 3)))

    def test_1d_window_accepted(self):
        lstm = LSTMRegressor(rng=SeededRNG(9))
        value = lstm.predict_window(np.zeros(5))
        assert np.isfinite(value)


class TestMLP:
    def _blobs(self, rng, n=200, d=6, gap=3.0):
        x = np.vstack([rng.normal(0, 1, (n, d)), rng.normal(gap, 1, (n, d))])
        y = np.array([0] * n + [1] * n)
        return x, y

    def test_rejects_bad_architecture(self):
        with pytest.raises(ValueError):
            MLPClassifier(0, rng=SeededRNG(1))
        with pytest.raises(ValueError):
            MLPClassifier(4, hidden_dims=(), rng=SeededRNG(1))

    def test_learns_separable_blobs(self):
        rng = SeededRNG(10)
        x, y = self._blobs(rng.child("data"))
        clf = MLPClassifier(6, (16, 12, 8), rng=rng.child("model"))
        clf.fit(x, y, epochs=10, rng=rng.child("fit"))
        assert (clf.predict(x) == y).mean() > 0.95

    def test_proba_in_unit_interval(self):
        rng = SeededRNG(11)
        x, y = self._blobs(rng.child("data"), n=50)
        clf = MLPClassifier(6, (8,), rng=rng.child("model"))
        clf.fit(x, y, epochs=2, rng=rng.child("fit"))
        proba = clf.predict_proba(x)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_loss_decreases(self):
        rng = SeededRNG(12)
        x, y = self._blobs(rng.child("data"), n=100)
        clf = MLPClassifier(6, (8, 8), rng=rng.child("model"))
        clf.fit(x, y, epochs=8, rng=rng.child("fit"))
        assert clf.loss_history[-1] < clf.loss_history[0]

    def test_fit_validates_shapes(self):
        clf = MLPClassifier(4, (4,), rng=SeededRNG(13))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 4)), np.zeros(2), rng=SeededRNG(14))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 4)), np.zeros(0), rng=SeededRNG(15))

    def test_majority_collapse_on_uninformative_features(self):
        """With constant features and an 80%-attack labelling, BCE's
        minimum is the base rate — predictions are all-positive at the
        0.5 boundary. This is the DNN failure mode from the paper."""
        rng = SeededRNG(16)
        x = np.ones((300, 5))
        y = (rng.random(300) < 0.8).astype(int)
        clf = MLPClassifier(5, (8, 8), rng=rng.child("model"))
        clf.fit(x, y, epochs=20, rng=rng.child("fit"))
        assert clf.predict(x).mean() == 1.0
