"""Tests for IPv4/MAC address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    bytes_to_mac,
    int_to_ip,
    ip_to_int,
    is_private_ip,
    mac_to_bytes,
    random_mac,
)
from repro.utils.rng import SeededRNG


class TestIPConversion:
    @pytest.mark.parametrize(
        "ip,value",
        [("0.0.0.0", 0), ("255.255.255.255", 0xFFFFFFFF),
         ("192.168.0.1", 3232235521), ("10.0.0.1", 167772161)],
    )
    def test_known_values(self, ip, value):
        assert ip_to_int(ip) == value
        assert int_to_ip(value) == ip

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)


class TestMACConversion:
    def test_roundtrip(self):
        mac = "aa:bb:cc:dd:ee:ff"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    @pytest.mark.parametrize("bad", ["aa:bb:cc", "zz:bb:cc:dd:ee:ff", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            mac_to_bytes(bad)

    def test_bytes_to_mac_wrong_length(self):
        with pytest.raises(ValueError):
            bytes_to_mac(b"\x00\x01")


class TestPrivateRanges:
    @pytest.mark.parametrize(
        "ip", ["10.0.0.1", "10.255.255.254", "172.16.0.1", "172.31.9.9",
               "192.168.1.1"]
    )
    def test_private(self, ip):
        assert is_private_ip(ip)

    @pytest.mark.parametrize(
        "ip", ["8.8.8.8", "172.32.0.1", "172.15.0.1", "192.169.0.1", "11.0.0.1"]
    )
    def test_public(self, ip):
        assert not is_private_ip(ip)


class TestRandomMac:
    def test_deterministic(self):
        assert random_mac(SeededRNG(5)) == random_mac(SeededRNG(5))

    def test_locally_administered_unicast(self):
        raw = mac_to_bytes(random_mac(SeededRNG(6)))
        assert raw[0] & 0x02  # locally administered
        assert not raw[0] & 0x01  # unicast

    def test_vendor_prefix(self):
        mac = random_mac(SeededRNG(7), vendor_prefix=b"\x00\x11\x22")
        assert mac.startswith("00:11:22:")

    def test_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            random_mac(SeededRNG(8), vendor_prefix=b"\x00\x11")
