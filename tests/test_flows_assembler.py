"""Tests for bidirectional flow assembly."""

import pytest

from repro.flows.assembler import FlowAssembler
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags

from tests.conftest import make_tcp_packet, make_udp_packet, simple_http_flow_packets


class TestAssembly:
    def test_single_conversation_one_flow(self):
        flows = FlowAssembler().assemble(simple_http_flow_packets())
        assert len(flows) == 1
        assert flows[0].total_packets == 5
        assert flows[0].terminated

    def test_fin_closes_flow_midstream(self):
        packets = simple_http_flow_packets(0.0) + simple_http_flow_packets(10.0)
        flows = FlowAssembler().assemble(packets)
        # Same 5-tuple reused after FIN: two separate flows.
        assert len(flows) == 2

    def test_rst_closes_flow(self):
        packets = [
            make_tcp_packet(0.0, flags=TCPFlags.SYN),
            make_tcp_packet(0.1, flags=TCPFlags.RST),
            make_tcp_packet(5.0, flags=TCPFlags.SYN),
        ]
        assembler = FlowAssembler()
        flows = assembler.assemble(packets)
        assert len(flows) == 2
        assert flows[0].terminated

    def test_idle_timeout_expires_flow(self):
        packets = [
            make_udp_packet(0.0),
            make_udp_packet(1.0),
            make_udp_packet(500.0),  # far past the 120s idle timeout
        ]
        flows = FlowAssembler(idle_timeout=120.0).assemble(packets)
        assert len(flows) == 2
        assert flows[0].total_packets == 2

    def test_active_timeout_splits_long_flow(self):
        packets = [make_udp_packet(float(t)) for t in range(0, 400, 50)]
        flows = FlowAssembler(idle_timeout=1000.0, active_timeout=200.0).assemble(
            packets
        )
        assert len(flows) >= 2

    def test_interleaved_flows_separate(self):
        packets = sorted(
            [make_udp_packet(float(i) * 0.1, sport=1000) for i in range(5)]
            + [make_udp_packet(float(i) * 0.1 + 0.05, sport=2000)
               for i in range(5)],
            key=lambda p: p.timestamp,
        )
        flows = FlowAssembler().assemble(packets)
        assert len(flows) == 2
        assert all(f.total_packets == 5 for f in flows)

    def test_unsorted_input_rejected(self):
        packets = [make_udp_packet(1.0), make_udp_packet(0.5)]
        assembler = FlowAssembler()
        with pytest.raises(ValueError, match="sorted"):
            list(assembler.process(packets))

    def test_non_ip_packets_counted_not_flowed(self):
        assembler = FlowAssembler()
        flows = assembler.assemble([Packet(timestamp=0.0), make_udp_packet(1.0)])
        assert assembler.non_ip_packets == 1
        assert len(flows) == 1

    def test_flush_closes_open_flows(self):
        assembler = FlowAssembler()
        emitted = list(assembler.process([make_udp_packet(0.0)]))
        assert emitted == []
        assert assembler.open_flows == 1
        flushed = list(assembler.flush())
        assert len(flushed) == 1
        assert assembler.open_flows == 0

    def test_flows_sorted_by_start_time(self):
        packets = sorted(
            [make_udp_packet(float(i), sport=3000 + i) for i in range(5)],
            key=lambda p: p.timestamp,
        )
        flows = FlowAssembler().assemble(packets)
        starts = [f.start_time for f in flows]
        assert starts == sorted(starts)

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ValueError):
            FlowAssembler(idle_timeout=0)
        with pytest.raises(ValueError):
            FlowAssembler(active_timeout=-5)
