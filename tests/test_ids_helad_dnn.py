"""Tests for the HELAD and DNN IDSs."""

import numpy as np
import pytest

from repro.flows.assembler import FlowAssembler
from repro.ids.dnn import DNNClassifierIDS
from repro.ids.helad import HELAD

from tests.conftest import make_udp_packet


class TestHELAD:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HELAD(window=1)
        with pytest.raises(ValueError):
            HELAD(blend=1.5)

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HELAD().anomaly_scores([make_udp_packet(0.0)])

    def test_flags_sustained_flood(self):
        benign = [make_udp_packet(float(i) * 0.5, sport=5000,
                                  payload=b"x" * 64)
                  for i in range(600)]
        flood = [make_udp_packet(300.0 + i * 0.001, src="66.6.6.6",
                                 sport=1024 + i, dport=80,
                                 payload=b"z" * 512, label=1)
                 for i in range(300)]
        ids = HELAD(seed=0)
        ids.fit(benign[:500])
        assert ids.trained
        scores = ids.anomaly_scores(benign[500:] + flood)
        benign_scores = scores[:100]
        flood_scores = scores[120:]  # skip the onset ramp
        assert np.median(flood_scores) > np.quantile(benign_scores, 0.95)

    def test_suppresses_isolated_benign_spike(self):
        """One burst packet after a calm history scores below the
        squash ceiling — the LSTM blend dampens singletons."""
        benign = [make_udp_packet(float(i) * 0.5, sport=5000,
                                  payload=b"x" * 64)
                  for i in range(500)]
        ids = HELAD(seed=1, blend=0.6)
        ids.fit(benign[:450])
        spike = make_udp_packet(226.0, src="9.9.9.9", sport=2000,
                                payload=b"q" * 1400)
        scores = ids.anomaly_scores(benign[450:] + [spike])
        assert scores[-1] <= 0.6 * 1.0 + 0.4 * 1.0  # bounded by blend
        assert scores[-1] < 1.0

    def test_default_config(self):
        config = HELAD.default_config()
        assert "window" in config and "blend" in config

    def test_scores_length(self):
        packets = [make_udp_packet(float(i) * 0.1) for i in range(60)]
        ids = HELAD(seed=2, window=4)
        ids.fit(packets[:40])
        assert len(ids.anomaly_scores(packets[40:])) == 20


def _labelled_flows(n_benign=60, n_attack=60):
    packets = []
    for i in range(n_benign):
        packets.append(make_udp_packet(float(i), sport=3000 + i,
                                       payload=b"x" * 100))
    for i in range(n_attack):
        packets.append(make_udp_packet(float(i) + 0.5, sport=10_000 + i,
                                       dport=80, payload=b"z" * 1400,
                                       label=1))
    packets.sort(key=lambda p: p.timestamp)
    flows = FlowAssembler().assemble(packets)
    from repro.flows.netflow import netflow_features, NETFLOW_FEATURE_NAMES
    from repro.features.encoding import FlowVectorEncoder

    encoder = FlowVectorEncoder(NETFLOW_FEATURE_NAMES)
    features = encoder.encode([netflow_features(f) for f in flows])
    labels = np.array([f.label for f in flows])
    return flows, features, labels


class TestDNNClassifierIDS:
    def test_requires_labels(self):
        flows, features, _ = _labelled_flows()
        with pytest.raises(ValueError, match="labels"):
            DNNClassifierIDS().fit(flows, features, None)

    def test_score_before_fit_raises(self):
        flows, features, _ = _labelled_flows()
        with pytest.raises(RuntimeError):
            DNNClassifierIDS().anomaly_scores(flows, features)

    def test_learns_labelled_flows(self):
        flows, features, labels = _labelled_flows()
        ids = DNNClassifierIDS(hidden_dims=(16, 12, 8), epochs=20, seed=0)
        ids.fit(flows, features, labels)
        scores = ids.anomaly_scores(flows, features)
        predictions = (scores >= 0.5).astype(int)
        assert (predictions == labels).mean() > 0.9

    def test_scores_are_probabilities(self):
        flows, features, labels = _labelled_flows(20, 20)
        ids = DNNClassifierIDS(hidden_dims=(8,), epochs=3, seed=1)
        ids.fit(flows, features, labels)
        scores = ids.anomaly_scores(flows, features)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_default_config_shape(self):
        config = DNNClassifierIDS.default_config()
        assert len(config["hidden_dims"]) == 3  # the paper's 3 layers
