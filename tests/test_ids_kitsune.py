"""Tests for the Kitsune reimplementation (feature mapper, KitNET,
end-to-end)."""

import numpy as np
import pytest

from repro.ids.kitsune.feature_mapper import FeatureMapper
from repro.ids.kitsune.kitnet import KitNET
from repro.ids.kitsune.kitsune import Kitsune
from repro.utils.rng import SeededRNG

from tests.conftest import make_udp_packet


class TestFeatureMapper:
    def test_groups_cover_all_features(self):
        rng = SeededRNG(1)
        mapper = FeatureMapper(12, max_group=4)
        for _ in range(50):
            mapper.partial_fit(rng.normal(size=12))
        groups = mapper.finalise()
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(12))

    def test_group_size_cap(self):
        rng = SeededRNG(2)
        mapper = FeatureMapper(20, max_group=5)
        for _ in range(50):
            mapper.partial_fit(rng.normal(size=20))
        assert all(len(g) <= 5 for g in mapper.finalise())

    def test_correlated_features_cluster_together(self):
        rng = SeededRNG(3)
        mapper = FeatureMapper(6, max_group=3)
        for _ in range(300):
            a = rng.normal()
            b = rng.normal()
            # features 0,1,2 move together; 3,4,5 move together.
            row = np.array([a, a + 0.01 * rng.normal(), a + 0.01 * rng.normal(),
                            b, b + 0.01 * rng.normal(), b + 0.01 * rng.normal()])
            mapper.partial_fit(row)
        groups = mapper.finalise()
        for group in groups:
            block = {0, 1, 2} if group[0] in (0, 1, 2) else {3, 4, 5}
            assert set(group) <= block

    def test_degenerate_grace_falls_back_to_chunks(self):
        mapper = FeatureMapper(10, max_group=4)
        groups = mapper.finalise()
        assert sorted(i for g in groups for i in g) == list(range(10))

    def test_shape_validation(self):
        mapper = FeatureMapper(4)
        with pytest.raises(ValueError):
            mapper.partial_fit(np.zeros(3))


class TestKitNET:
    def _make(self, dim=10, fm=30, ad=120):
        return KitNET(dim, fm_grace=fm, ad_grace=ad, max_group=4,
                      rng=SeededRNG(4))

    def test_phases(self):
        net = self._make()
        rng = SeededRNG(5)
        assert net.in_feature_mapping
        for _ in range(30):
            net.process(rng.uniform(size=10))
        assert not net.in_feature_mapping and net.in_training
        for _ in range(120):
            net.process(rng.uniform(size=10))
        assert not net.in_training

    def test_zero_scores_during_fm(self):
        net = self._make()
        rng = SeededRNG(6)
        scores = [net.process(rng.uniform(size=10)) for _ in range(30)]
        assert all(s == 0.0 for s in scores)

    def test_detects_distribution_shift(self):
        net = self._make(fm=50, ad=400)
        rng = SeededRNG(7)
        for _ in range(450):
            net.process(rng.uniform(0.4, 0.6, size=10))
        normal_scores = [net.process(rng.uniform(0.4, 0.6, size=10))
                         for _ in range(50)]
        anomaly_scores = [net.process(rng.uniform(5.0, 6.0, size=10))
                          for _ in range(50)]
        assert np.mean(anomaly_scores) > 3 * np.mean(normal_scores)

    def test_execute_does_not_train(self):
        net = self._make(fm=30, ad=60)
        rng = SeededRNG(8)
        for _ in range(90):
            net.process(rng.uniform(size=10))
        trained = [ae.samples_trained for ae in net.ensemble]
        for _ in range(20):
            net.process(rng.uniform(size=10))
        assert [ae.samples_trained for ae in net.ensemble] == trained

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KitNET(0, rng=SeededRNG(9))
        with pytest.raises(ValueError):
            KitNET(5, fm_grace=0, rng=SeededRNG(9))


class TestKitsuneEndToEnd:
    def test_flags_flood_after_benign_training(self):
        # Benign: sparse periodic telemetry. Attack: high-rate flood
        # from a new source.
        benign = [make_udp_packet(float(i) * 0.5, sport=5000,
                                  payload=b"x" * 64)
                  for i in range(700)]
        flood = [make_udp_packet(350.0 + i * 0.001, src="66.6.6.6",
                                 sport=1024 + i, dport=80,
                                 payload=b"z" * 512, label=1)
                 for i in range(300)]
        ids = Kitsune(fm_grace=100, ad_grace=500, seed=0)
        ids.fit(benign[:600])
        assert ids.trained
        scores = ids.anomaly_scores(benign[600:] + flood)
        benign_scores = scores[:100]
        flood_scores = scores[100:]
        assert np.median(flood_scores) > 5 * np.median(benign_scores)

    def test_default_config_keys(self):
        config = Kitsune.default_config()
        assert {"fm_grace", "ad_grace", "max_group"} <= set(config)

    def test_scores_length_matches_input(self):
        ids = Kitsune(fm_grace=10, ad_grace=20, seed=1)
        packets = [make_udp_packet(float(i) * 0.1) for i in range(40)]
        ids.fit(packets[:30])
        assert len(ids.anomaly_scores(packets[30:])) == 10
