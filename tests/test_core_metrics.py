"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    MetricReport,
    average_metrics,
    compute_metrics,
    confusion_matrix,
)


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert confusion_matrix(y_true, y_pred) == (2, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4))


class TestComputeMetrics:
    def test_perfect(self):
        y = np.array([0, 1, 0, 1])
        m = compute_metrics(y, y)
        assert (m.accuracy, m.precision, m.recall, m.f1) == (1.0, 1.0, 1.0, 1.0)

    def test_zero_detections_give_zeros_not_nan(self):
        """The paper's Slips rows: 0.0000, not NaN."""
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.zeros(4, dtype=int)
        m = compute_metrics(y_true, y_pred)
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0
        assert m.accuracy == 0.5

    def test_all_positive_collapse_pattern(self):
        """The DNN pattern: accuracy == precision == prevalence and
        recall == 1 when everything is flagged."""
        y_true = np.array([1] * 21 + [0] * 79)
        y_pred = np.ones(100, dtype=int)
        m = compute_metrics(y_true, y_pred)
        assert m.accuracy == pytest.approx(0.21)
        assert m.precision == pytest.approx(0.21)
        assert m.recall == 1.0

    def test_known_values(self):
        y_true = np.array([1, 1, 1, 0, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0, 0, 0])
        m = compute_metrics(y_true, y_pred)
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(2 / 3)
        assert m.f1 == pytest.approx(2 / 3)
        assert m.accuracy == pytest.approx(6 / 8)

    def test_derived_properties(self):
        y_true = np.array([1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 0])
        m = compute_metrics(y_true, y_pred)
        assert m.support == 4
        assert m.positives == 1
        assert m.prevalence == 0.25
        assert m.false_positive_rate == pytest.approx(1 / 3)

    def test_row_formatting(self):
        m = MetricReport(accuracy=0.85374, precision=0.5, recall=1.0, f1=0.75)
        assert m.row() == ("0.8537", "0.5000", "1.0000", "0.7500")

    @given(
        st.lists(st.booleans(), min_size=1, max_size=60),
        st.lists(st.booleans(), min_size=1, max_size=60),
    )
    def test_invariants_property(self, true_bits, pred_bits):
        n = min(len(true_bits), len(pred_bits))
        y_true = np.array(true_bits[:n], dtype=int)
        y_pred = np.array(pred_bits[:n], dtype=int)
        m = compute_metrics(y_true, y_pred)
        for value in (m.accuracy, m.precision, m.recall, m.f1):
            assert 0.0 <= value <= 1.0
        assert m.tp + m.fp + m.tn + m.fn == n
        # F1 is the harmonic mean when both components are non-zero.
        if m.precision > 0 and m.recall > 0:
            expected = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert m.f1 == pytest.approx(expected)


class TestAverageMetrics:
    def test_unweighted_mean(self):
        a = MetricReport(accuracy=1.0, precision=1.0, recall=1.0, f1=1.0)
        b = MetricReport(accuracy=0.0, precision=0.0, recall=0.0, f1=0.0)
        avg = average_metrics([a, b])
        assert avg.accuracy == 0.5
        assert avg.f1 == 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_metrics([])
