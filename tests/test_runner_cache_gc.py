"""Size-capped LRU eviction on the on-disk caches.

The recency signal is the entry mtime: stores set it, hits refresh it
(``_DiskStore.load`` touches the file), and ``gc`` removes
oldest-mtime-first until the namespace fits the byte budget. Tests pin
mtimes explicitly with ``os.utime`` so ordering never depends on clock
resolution.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.metrics import MetricReport
from repro.runner import (
    DatasetCache,
    ExperimentEngine,
    ResultCache,
    cache_dir_stats,
    config_key,
    gc_cache_dir,
)


def _tiny_result(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        config=config,
        metrics=MetricReport(1.0, 1.0, 1.0, 1.0),
        threshold=0.5,
        scores=np.zeros(4),
        y_true=np.zeros(4, dtype=int),
        notes={},
        runtime_seconds=0.0,
    )


def _configs(n: int) -> list[ExperimentConfig]:
    base = ExperimentConfig(ids_name="Slips", dataset_name="Mirai")
    return [replace(base, seed=seed) for seed in range(n)]


def _set_mtime(cache: ResultCache, config: ExperimentConfig, mtime: int):
    path = cache._disk.path(config_key(config))
    os.utime(path, (mtime, mtime))
    return path


class TestLRUEviction:
    def test_evicts_oldest_mtime_first(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        configs = _configs(3)
        for i, config in enumerate(configs):
            cache.put(config, _tiny_result(config))
            _set_mtime(cache, config, 1000 + i)
        entry_size = cache._disk.entries()[0][1]
        report = cache.gc(max_bytes=2 * entry_size)
        assert report.removed_files == 1
        assert report.kept_files == 2
        # Oldest (seed 0) gone; newer two survive.
        assert cache.get(configs[0]) is None
        assert cache.get(configs[1]) is not None
        assert cache.get(configs[2]) is not None

    def test_read_refreshes_recency(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        configs = _configs(2)
        for i, config in enumerate(configs):
            cache.put(config, _tiny_result(config))
            _set_mtime(cache, config, 1000 + i)
        # A hit on the older entry makes the *other* one the LRU victim.
        assert cache.get(configs[0]) is not None
        entry_size = cache._disk.entries()[0][1]
        cache.gc(max_bytes=entry_size)
        assert cache.get(configs[0]) is not None
        assert cache.get(configs[1]) is None

    def test_zero_budget_clears_namespace(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        for config in _configs(2):
            cache.put(config, _tiny_result(config))
        report = cache.gc(max_bytes=0)
        assert report.kept_files == 0
        assert report.kept_bytes == 0
        assert report.removed_files == 2

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(cache_dir=tmp_path).gc(max_bytes=-1)


class TestAutoCap:
    def test_put_enforces_budget(self, tmp_path):
        probe = ResultCache(cache_dir=tmp_path)
        config = _configs(1)[0]
        probe.put(config, _tiny_result(config))
        entry_size = probe._disk.entries()[0][1]
        probe.gc(max_bytes=0)

        cache = ResultCache(cache_dir=tmp_path, max_bytes=2 * entry_size)
        for i, config in enumerate(_configs(4)):
            cache.put(config, _tiny_result(config))
            _set_mtime(cache, config, 1000 + i)
        assert len(cache._disk.entries()) <= 2
        # The newest entries are the survivors.
        assert cache.get(_configs(4)[3]) is not None

    def test_engine_forwards_result_cache_bytes(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, result_cache_bytes=123)
        assert engine.result_cache.max_bytes == 123

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(cache_dir=tmp_path, max_bytes=-5)


class TestDatasetCacheGC:
    def test_disk_tier_trimmed(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        cache.get_or_generate("Mirai", seed=0, scale=0.02)
        cache.get_or_generate("Mirai", seed=1, scale=0.02)
        report = cache.gc(max_bytes=0)
        assert report.removed_files == 2
        assert cache_dir_stats(tmp_path)["datasets"] == (0, 0)

    def test_memory_only_cache_is_noop(self):
        assert DatasetCache().gc(max_bytes=0) is None


class TestCacheDirHelpers:
    def test_stats_and_offline_gc(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        for config in _configs(2):
            cache.put(config, _tiny_result(config))
        stats = cache_dir_stats(tmp_path)
        assert stats["results"][0] == 2
        assert stats["results"][1] > 0
        assert stats["datasets"] == (0, 0)

        reports = gc_cache_dir(tmp_path, max_result_bytes=0)
        assert len(reports) == 1
        assert reports[0].namespace == "results"
        assert reports[0].removed_files == 2
        assert gc_cache_dir(tmp_path) == []

    def test_gc_sweeps_stale_tmp_but_keeps_fresh_ones(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        config = _configs(1)[0]
        cache.put(config, _tiny_result(config))
        stale = cache._disk.root / "abandoned.tmp"
        stale.write_bytes(b"partial write")
        os.utime(stale, (1000, 1000))  # long-dead writer
        fresh = cache._disk.root / "inflight.tmp"
        fresh.write_bytes(b"concurrent writer mid-store")
        cache._disk.entries()
        assert not stale.exists()
        # A fresh .tmp may belong to a live writer: never swept.
        assert fresh.exists()
