"""Cross-module property and fuzz tests.

These target the invariants the pipeline silently relies on: parsers
never crash on garbage (they raise typed errors), flow assembly
conserves packets, feature exporters never emit non-finite values, and
the threshold search respects its budget whenever the budget is
feasible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.thresholds import fpr_budget_threshold
from repro.datasets.traffic import Network, tcp_conversation
from repro.flows.assembler import FlowAssembler
from repro.flows.cicflow import cicflow_features
from repro.flows.netflow import netflow_features
from repro.net.packet import Packet
from repro.net.pcap import PcapFormatError, PcapReader
from repro.utils.rng import SeededRNG

from tests.conftest import make_udp_packet


class TestParserFuzz:
    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=200))
    def test_packet_parser_raises_typed_errors_only(self, blob):
        """Arbitrary bytes either parse or raise ValueError — never
        crash with IndexError/struct.error/etc."""
        try:
            Packet.from_bytes(blob)
        except ValueError:
            pass

    @settings(max_examples=100)
    @given(st.binary(min_size=0, max_size=400))
    def test_pcap_reader_raises_typed_errors_only(self, blob):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "fuzz.pcap"
            path.write_bytes(blob)
            try:
                for _ in PcapReader(path):
                    pass
            except (PcapFormatError, ValueError):
                pass

    @settings(max_examples=100)
    @given(st.binary(min_size=12, max_size=120))
    def test_dns_parser_typed_errors_only(self, blob):
        from repro.net.dns import DNSMessage

        try:
            DNSMessage.from_bytes(blob)
        except ValueError:
            pass


class TestFlowConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4),      # client index
                st.integers(0, 2),      # server index
                st.floats(0.0, 500.0),  # start time
                st.integers(1, 3),      # exchange rounds
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_assembler_conserves_ip_packets(self, sessions):
        """Every IP packet lands in exactly one flow."""
        rng = SeededRNG(11, "conserve")
        network = Network(subnet="10.3", rng=rng.child("net"))
        clients = network.hosts(5)
        servers = network.hosts(3)
        packets = []
        for ci, si, start, rounds in sessions:
            packets.extend(
                tcp_conversation(
                    rng, start, clients[ci], servers[si],
                    sport=network.ephemeral_port(), dport=80,
                    request_sizes=[100] * rounds,
                    response_sizes=[300] * rounds,
                )
            )
        packets.sort(key=lambda p: p.timestamp)
        assembler = FlowAssembler()
        flows = assembler.assemble(packets)
        assert sum(f.total_packets for f in flows) == len(packets)

    def test_flow_byte_conservation(self):
        packets = [make_udp_packet(float(i) * 0.1, payload=b"x" * (10 + i))
                   for i in range(20)]
        flows = FlowAssembler().assemble(packets)
        assert sum(f.total_bytes for f in flows) == sum(
            p.wire_len for p in packets
        )


class TestFeatureFiniteness:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 4),             # rounds
        st.integers(0, 5000),          # request size
        st.integers(0, 5000),          # response size
        st.floats(0.001, 10.0),        # think time
    )
    def test_exporters_always_finite(self, rounds, req, resp, think):
        rng = SeededRNG(13, "finite")
        network = Network(subnet="10.4", rng=rng.child("net"))
        client, server = network.hosts(2)
        packets = tcp_conversation(
            rng, 0.0, client, server, sport=40000, dport=443,
            request_sizes=[req] * rounds, response_sizes=[resp] * rounds,
            think_time=think,
        )
        flows = FlowAssembler().assemble(packets)
        for flow in flows:
            for name, value in cicflow_features(flow).items():
                assert np.isfinite(value), f"cicflow {name}"
            for name, value in netflow_features(flow).items():
                assert np.isfinite(value), f"netflow {name}"


class TestThresholdBudgetProperty:
    @settings(max_examples=50)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=10, max_size=120),
        st.integers(0, 10_000),
    )
    def test_fpr_budget_respected_when_feasible(self, raw_scores, seed):
        rng = np.random.default_rng(seed)
        scores = np.array(raw_scores)
        y_true = rng.integers(0, 2, scores.size)
        if y_true.sum() in (0, scores.size):
            return  # degenerate class composition
        threshold = fpr_budget_threshold(y_true, scores, max_fpr=0.1)
        pred = scores >= threshold
        fp = int(np.sum(pred & (y_true == 0)))
        negatives = int(np.sum(y_true == 0))
        # Flagging nothing always satisfies the budget, so the chosen
        # threshold must too.
        assert fp / negatives <= 0.1 + 1e-9
