"""Cross-module property and fuzz tests.

These target the invariants the pipeline silently relies on: parsers
never crash on garbage (they raise typed errors), flow assembly
conserves packets, feature exporters never emit non-finite values, and
the threshold search respects its budget whenever the budget is
feasible.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.thresholds import fpr_budget_threshold
from repro.datasets.traffic import Network, tcp_conversation
from repro.features.incstat import IncStat
from repro.flows.assembler import FlowAssembler
from repro.flows.cicflow import cicflow_features
from repro.flows.netflow import netflow_features
from repro.net.packet import Packet
from repro.net.pcap import PcapFormatError, PcapReader
from repro.utils.rng import SeededRNG

from tests.conftest import make_udp_packet


class TestParserFuzz:
    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=200))
    def test_packet_parser_raises_typed_errors_only(self, blob):
        """Arbitrary bytes either parse or raise ValueError — never
        crash with IndexError/struct.error/etc."""
        try:
            Packet.from_bytes(blob)
        except ValueError:
            pass

    @settings(max_examples=100)
    @given(st.binary(min_size=0, max_size=400))
    def test_pcap_reader_raises_typed_errors_only(self, blob):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "fuzz.pcap"
            path.write_bytes(blob)
            try:
                for _ in PcapReader(path):
                    pass
            except (PcapFormatError, ValueError):
                pass

    @settings(max_examples=100)
    @given(st.binary(min_size=12, max_size=120))
    def test_dns_parser_typed_errors_only(self, blob):
        from repro.net.dns import DNSMessage

        try:
            DNSMessage.from_bytes(blob)
        except ValueError:
            pass


class TestFlowConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4),      # client index
                st.integers(0, 2),      # server index
                st.floats(0.0, 500.0),  # start time
                st.integers(1, 3),      # exchange rounds
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_assembler_conserves_ip_packets(self, sessions):
        """Every IP packet lands in exactly one flow."""
        rng = SeededRNG(11, "conserve")
        network = Network(subnet="10.3", rng=rng.child("net"))
        clients = network.hosts(5)
        servers = network.hosts(3)
        packets = []
        for ci, si, start, rounds in sessions:
            packets.extend(
                tcp_conversation(
                    rng, start, clients[ci], servers[si],
                    sport=network.ephemeral_port(), dport=80,
                    request_sizes=[100] * rounds,
                    response_sizes=[300] * rounds,
                )
            )
        packets.sort(key=lambda p: p.timestamp)
        assembler = FlowAssembler()
        flows = assembler.assemble(packets)
        assert sum(f.total_packets for f in flows) == len(packets)

    def test_flow_byte_conservation(self):
        packets = [make_udp_packet(float(i) * 0.1, payload=b"x" * (10 + i))
                   for i in range(20)]
        flows = FlowAssembler().assemble(packets)
        assert sum(f.total_bytes for f in flows) == sum(
            p.wire_len for p in packets
        )


class TestFeatureFiniteness:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 4),             # rounds
        st.integers(0, 5000),          # request size
        st.integers(0, 5000),          # response size
        st.floats(0.001, 10.0),        # think time
    )
    def test_exporters_always_finite(self, rounds, req, resp, think):
        rng = SeededRNG(13, "finite")
        network = Network(subnet="10.4", rng=rng.child("net"))
        client, server = network.hosts(2)
        packets = tcp_conversation(
            rng, 0.0, client, server, sport=40000, dport=443,
            request_sizes=[req] * rounds, response_sizes=[resp] * rounds,
            think_time=think,
        )
        flows = FlowAssembler().assemble(packets)
        for flow in flows:
            for name, value in cicflow_features(flow).items():
                assert np.isfinite(value), f"cicflow {name}"
            for name, value in netflow_features(flow).items():
                assert np.isfinite(value), f"netflow {name}"


#: Bounded stream observations: (value, dt-since-previous) pairs with
#: non-negative time steps, as AfterImage sees them.
_observations = st.lists(
    st.tuples(
        st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
        st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


class TestIncStatProperties:
    """Invariants of the damped statistics Kitsune's features rest on."""

    @settings(max_examples=200)
    @given(_observations, st.sampled_from([5.0, 3.0, 1.0, 0.1, 0.01]),
           st.floats(0.0, 100.0))
    def test_decay_is_monotone_in_time(self, observations, decay, extra_dt):
        """Once observations stop, weight/|LS|/SS can only shrink as the
        decay horizon advances — never grow, never go negative."""
        stat = IncStat(decay)
        now = 0.0
        for value, dt in observations:
            now += dt
            stat.insert(value, now)
        before = (stat.weight, abs(stat.linear_sum), stat.squared_sum)
        stat.decay_to(now + extra_dt)
        after = (stat.weight, abs(stat.linear_sum), stat.squared_sum)
        for b, a in zip(before, after):
            assert 0.0 <= a <= b + 1e-12

    @settings(max_examples=200)
    @given(
        st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
        st.sampled_from([5.0, 1.0, 0.1]),
        st.floats(0.0, 20.0),
        st.floats(0.0, 20.0),
    )
    def test_split_decay_commutes_with_merged_interval(
        self, value, decay, dt1, dt2
    ):
        """insert then decay_to(t1); decay_to(t2) == decay_to(t2)
        directly: decaying across [t0,t1] then [t1,t2] must equal one
        merged [t0,t2] decay (exponential damping is interval-additive)."""
        split = IncStat(decay)
        split.insert(value, 10.0)
        split.decay_to(10.0 + dt1)
        split.decay_to(10.0 + dt1 + dt2)

        merged = IncStat(decay)
        merged.insert(value, 10.0)
        merged.decay_to(10.0 + dt1 + dt2)

        assert split.weight == pytest.approx(merged.weight, rel=1e-9, abs=1e-300)
        assert split.linear_sum == pytest.approx(
            merged.linear_sum, rel=1e-9, abs=1e-300
        )
        assert split.squared_sum == pytest.approx(
            merged.squared_sum, rel=1e-9, abs=1e-300
        )
        assert split.last_time == pytest.approx(merged.last_time)

    @settings(max_examples=200)
    @given(_observations, st.sampled_from([5.0, 1.0, 0.01]))
    def test_weight_mean_std_invariants(self, observations, decay):
        """With every observation weighted positively: weight > 0 after
        any insert, std/variance are never negative, the mean stays
        inside the observed value envelope, and exported stats are
        finite."""
        stat = IncStat(decay)
        assert stat.stats() == (0.0, 0.0, 0.0)  # empty stream is all-zero
        now = 0.0
        values = []
        for value, dt in observations:
            now += dt
            values.append(value)
            stat.insert(value, now)
            assert stat.weight > 0.0
            assert stat.variance >= 0.0
            assert stat.std >= 0.0
            # A damped mean is a positively-weighted average of the
            # inserted values, so it cannot escape their envelope.
            assert min(values) - 1e-9 <= stat.mean <= max(values) + 1e-9
            weight, mean, std = stat.stats()
            assert all(math.isfinite(x) for x in (weight, mean, std))
            assert std * std == pytest.approx(stat.variance, rel=1e-6, abs=1e-12)


class TestThresholdBudgetProperty:
    @settings(max_examples=50)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=10, max_size=120),
        st.integers(0, 10_000),
    )
    def test_fpr_budget_respected_when_feasible(self, raw_scores, seed):
        rng = np.random.default_rng(seed)
        scores = np.array(raw_scores)
        y_true = rng.integers(0, 2, scores.size)
        if y_true.sum() in (0, scores.size):
            return  # degenerate class composition
        threshold = fpr_budget_threshold(y_true, scores, max_fpr=0.1)
        pred = scores >= threshold
        fp = int(np.sum(pred & (y_true == 0)))
        negatives = int(np.sum(y_true == 0))
        # Flagging nothing always satisfies the budget, so the chosen
        # threshold must too.
        assert fp / negatives <= 0.1 + 1e-9
