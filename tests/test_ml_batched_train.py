"""Batched/parallel KitNET training: parity, determinism, goldens.

Two engines, two contracts (see :mod:`repro.ml.batched_train`):

* cross-group parallel online training (``train_workers=...``) must be
  **bit-identical** to the sequential per-row reference — scores, final
  weights and scaler state — for any worker count, backend, and any
  mix of per-row and batched calls;
* mini-batch SGD (``train_mode="minibatch"``) is an intentionally
  different learning trajectory: deterministic under a fixed call
  chunking, pinned by its own golden fixture, and never bit-compared
  to the online reference.

The golden compare allows rtol 1e-9 (``np.exp`` SIMD ulp drift across
CPU generations, as in test_ml_batched.py); everything in-process is
exact. Regenerate after an intentional semantic change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src pytest tests/test_ml_batched_train.py
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.kitnet import KitNET
from repro.ml.autoencoder import Autoencoder
from repro.ml.batched_train import MiniBatchTrainer, ShardedGroupTrainer
from repro.utils.rng import SeededRNG

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "kitnet_train_minibatch.npz"
)


def _stream(n: int, dim: int, seed: int = 11) -> np.ndarray:
    rng = SeededRNG(seed, "batched-stream")
    calm = rng.uniform(0.2, 0.8, size=(n - n // 5, dim))
    loud = rng.uniform(2.0, 6.0, size=(n // 5, dim))
    return np.vstack([calm, loud])


def _kitnet(dim: int = 24, fm: int = 40, ad: int = 160, **kwargs) -> KitNET:
    return KitNET(
        dim, fm_grace=fm, ad_grace=ad, max_group=5, rng=SeededRNG(4),
        **kwargs,
    )


def _weights(net: KitNET) -> list[np.ndarray]:
    layers = []
    for ae in [*net.ensemble, net.output_layer]:
        layers += [
            ae.encoder.weights, ae.encoder.bias,
            ae.decoder.weights, ae.decoder.bias,
        ]
    return layers


def _assert_same_state(reference: KitNET, candidate: KitNET) -> None:
    assert candidate.samples_seen == reference.samples_seen
    assert np.array_equal(candidate.scaler.min, reference.scaler.min)
    assert np.array_equal(candidate.scaler.max, reference.scaler.max)
    assert candidate.scaler.frozen == reference.scaler.frozen
    for mine, theirs in zip(_weights(candidate), _weights(reference)):
        assert np.array_equal(mine, theirs)


class TestRunningScaler:
    def test_fit_transform_running_matches_per_row_loop(self):
        rng = SeededRNG(5)
        rows = rng.uniform(-3.0, 7.0, size=(200, 6))
        rows[:, 2] = 1.25  # constant column: span 0 maps to 0
        for clip in (False, True):
            serial = OnlineMinMaxScaler(6, clip=clip)
            expected = np.array([serial.fit_transform(row) for row in rows])
            vector = OnlineMinMaxScaler(6, clip=clip)
            got = vector.fit_transform_running(rows)
            assert np.array_equal(expected, got)
            assert np.array_equal(serial.min, vector.min)
            assert np.array_equal(serial.max, vector.max)

    def test_running_composes_across_chunks(self):
        rng = SeededRNG(6)
        rows = rng.uniform(size=(101, 4))
        serial = OnlineMinMaxScaler(4)
        expected = np.array([serial.fit_transform(row) for row in rows])
        vector = OnlineMinMaxScaler(4)
        got = np.vstack([
            vector.fit_transform_running(rows[start : start + 17])
            for start in range(0, 101, 17)
        ])
        assert np.array_equal(expected, got)

    def test_empty_and_frozen(self):
        scaler = OnlineMinMaxScaler(3)
        assert scaler.fit_transform_running(np.empty((0, 3))).shape == (0, 3)
        scaler.fit_transform_running(np.arange(6.0).reshape(2, 3))
        scaler.freeze()
        frozen_min = scaler.min.copy()
        out = scaler.fit_transform_running(np.full((2, 3), 99.0))
        assert np.array_equal(scaler.min, frozen_min)  # no fit once frozen
        assert np.array_equal(out, scaler.transform(np.full((2, 3), 99.0)))


class TestAutoencoderTrainBatch:
    def test_single_row_bit_identical_to_train_score(self):
        rng = SeededRNG(21)
        one = Autoencoder(9, rng=rng.child("ae"))
        two = Autoencoder(9, rng=rng.child("ae"))
        rows = rng.uniform(size=(40, 9))
        for row in rows:
            expected = one.train_score(row)
            got = two.train_batch(row.reshape(1, -1))
            assert got.shape == (1,)
            assert got[0] == expected
        for mine, theirs in zip(
            (one.encoder.weights, one.encoder.bias,
             one.decoder.weights, one.decoder.bias),
            (two.encoder.weights, two.encoder.bias,
             two.decoder.weights, two.decoder.bias),
        ):
            assert np.array_equal(mine, theirs)
        assert one.samples_trained == two.samples_trained == 40

    def test_batch_step_returns_pre_update_rmses(self):
        rng = SeededRNG(22)
        ae = Autoencoder(7, rng=rng.child("ae"))
        rows = rng.uniform(size=(16, 7))
        # Expected pre-update RMSEs via the same (training) forward pass
        # — score_batch's einsum execute path rounds differently from
        # the BLAS training forward, so it is not the reference here.
        reconstruction = ae.reconstruct(rows)
        before = np.sqrt(np.mean((reconstruction - rows) ** 2, axis=1))
        got = ae.train_batch(rows)
        assert np.array_equal(got, before)  # execute-then-train semantics
        after = ae.reconstruct(rows)
        assert not np.array_equal(after, reconstruction)  # weights moved

    def test_empty_batch(self):
        rng = SeededRNG(23)
        ae = Autoencoder(5, rng=rng.child("ae"))
        assert ae.train_batch(np.empty((0, 5))).shape == (0,)
        assert ae.score_batch(np.empty((0, 5))).shape == (0,)
        assert ae.samples_trained == 0

    def test_pickle_roundtrip(self):
        """Activations hold lambdas; __reduce__ must round-trip them so
        process-backend workers can ship autoencoders."""
        rng = SeededRNG(24)
        ae = Autoencoder(6, rng=rng.child("ae"))
        ae.train_score(rng.uniform(size=6))
        clone = pickle.loads(pickle.dumps(ae))
        row = rng.uniform(size=6)
        assert clone.score(row) == ae.score(row)
        assert clone.encoder.activation is ae.encoder.activation


class TestEngineValidation:
    def _ensemble(self, groups=4, dim=3):
        rng = SeededRNG(30)
        index = [
            np.arange(i * dim, (i + 1) * dim, dtype=np.intp)
            for i in range(groups)
        ]
        ensemble = [
            Autoencoder(dim, rng=rng.child(f"ae-{i}"))
            for i in range(groups)
        ]
        return ensemble, index

    def test_mismatched_lengths(self):
        ensemble, index = self._ensemble()
        with pytest.raises(ValueError, match="autoencoders for"):
            MiniBatchTrainer(ensemble, index[:-1], learning_rate=0.1)
        with pytest.raises(ValueError, match="autoencoders for"):
            ShardedGroupTrainer(ensemble[:-1], index)

    def test_bad_workers_and_backend(self):
        ensemble, index = self._ensemble()
        with pytest.raises(ValueError, match="workers"):
            ShardedGroupTrainer(ensemble, index, workers=0)
        with pytest.raises(ValueError, match="backend"):
            ShardedGroupTrainer(ensemble, index, backend="mpi")

    def test_kitnet_train_param_validation(self):
        with pytest.raises(ValueError, match="train_mode"):
            _kitnet(train_mode="sgd")
        with pytest.raises(ValueError, match="train_backend"):
            _kitnet(train_backend="mpi")
        with pytest.raises(ValueError, match="train_batch"):
            _kitnet(train_batch=0)
        with pytest.raises(ValueError, match="train_workers"):
            _kitnet(train_workers=0)


class TestParallelOnlineParity:
    """train_workers engines must be bit-identical to the reference."""

    def _reference(self, rows):
        net = _kitnet()
        scores = np.array([net.process(row) for row in rows])
        return net, scores

    def test_inline_single_call(self):
        rows = _stream(500, 24)
        reference, expected = self._reference(rows)
        net = _kitnet(train_workers=1)
        got = net.process_batch(rows)
        assert np.array_equal(expected, got)
        _assert_same_state(reference, net)

    def test_threaded_odd_chunks(self):
        rows = _stream(500, 24)
        reference, expected = self._reference(rows)
        net = _kitnet(train_workers=3)
        got = np.concatenate([
            net.process_batch(rows[start : start + 37])
            for start in range(0, 500, 37)
        ])
        assert np.array_equal(expected, got)
        _assert_same_state(reference, net)

    def test_process_backend(self):
        rows = _stream(400, 24)
        reference, expected = self._reference(rows[:400])
        net = _kitnet(train_workers=2, train_backend="process")
        try:
            got = net.process_batch(rows)
        finally:
            engine = getattr(net, "_sharded_engine", None)
            if engine is not None:
                engine.close()
        assert np.array_equal(expected, got)
        _assert_same_state(reference, net)

    def test_mixed_per_row_and_batched_calls(self):
        rows = _stream(500, 24)
        reference, expected = self._reference(rows)
        net = _kitnet(train_workers=2)
        got = np.empty(500)
        got[:97] = [net.process(row) for row in rows[:97]]
        got[97:300] = net.process_batch(rows[97:300])
        got[300:310] = [net.process(row) for row in rows[300:310]]
        got[310:] = net.process_batch(rows[310:])
        assert np.array_equal(expected, got)
        _assert_same_state(reference, net)

    def test_kitsune_fit_is_bit_identical_to_per_packet(self):
        """Kitsune.fit now routes through process_batch; the default
        configuration must keep the exact per-packet trajectory."""
        from tests.conftest import make_udp_packet

        from repro.ids.kitsune import Kitsune

        packets = [
            make_udp_packet(float(i) * 0.4, sport=5000, payload=b"x" * 64)
            for i in range(900)
        ]
        reference = Kitsune(fm_grace=100, ad_grace=500, seed=3)
        for packet in packets[:600]:
            reference.kitnet.process(reference.netstat.update(packet))
        expected = reference.anomaly_scores(packets[600:])

        batched = Kitsune(fm_grace=100, ad_grace=500, seed=3)
        batched.fit(packets[:600])
        got = batched.anomaly_scores(packets[600:])
        assert np.array_equal(expected, got)


class TestMiniBatchMode:
    def test_deterministic_under_identical_chunking(self):
        rows = _stream(500, 24)
        one = _kitnet(train_mode="minibatch", train_batch=16)
        two = _kitnet(train_mode="minibatch", train_batch=16)
        assert np.array_equal(one.process_batch(rows), two.process_batch(rows))
        _assert_same_state(one, two)

    def test_trajectory_differs_from_online(self):
        rows = _stream(500, 24)
        online = _kitnet().process_batch(rows)
        minibatch = _kitnet(
            train_mode="minibatch", train_batch=16
        ).process_batch(rows)
        assert minibatch.shape == online.shape
        assert not np.array_equal(minibatch, online)

    def test_per_row_training_step_guard(self):
        """Once the packed minibatch engine owns the weights, a stray
        per-row online step must be refused, not silently diverge."""
        rows = _stream(500, 24)
        net = _kitnet(train_mode="minibatch")
        net.process_batch(rows[:100])  # mid-training: engine is live
        assert net.in_training
        with pytest.raises(RuntimeError, match="mini-batch training"):
            net._train_step(rows[100])

    def test_engine_synced_at_boundary_and_executes(self):
        rows = _stream(500, 24)
        net = _kitnet(train_mode="minibatch", train_batch=32)
        scores = net.process_batch(rows)
        assert net._minibatch_engine is None  # synced and dropped
        assert not net.in_training
        assert np.all(np.isfinite(scores))
        # Regime shift at the stream tail must still read as anomalous.
        assert scores[-100:].mean() > scores[250:300].mean()

    def test_scores_match_golden(self):
        rows = _stream(600, 24, seed=13)
        net = _kitnet(train_mode="minibatch", train_batch=32)
        scores = net.process_batch(rows)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            np.savez_compressed(GOLDEN_PATH, scores=scores)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        if not GOLDEN_PATH.exists():
            pytest.fail(
                "golden fixture missing; regenerate with REPRO_REGEN_GOLDEN=1"
            )
        golden = np.load(GOLDEN_PATH)["scores"]
        assert golden.shape == scores.shape == (600,)
        np.testing.assert_allclose(golden, scores, rtol=1e-9)


class TestBatchStateSafety:
    def test_empty_inputs_everywhere(self):
        net = _kitnet()
        assert net.process_batch([]).shape == (0,)
        assert net.process_batch(np.empty((0, 24))).shape == (0,)
        assert net.samples_seen == 0
        net.process_batch(_stream(500, 24))
        before = net.samples_seen
        assert net.execute_batch([]).shape == (0,)
        assert net.samples_seen == before

    def test_execute_batch_failure_leaves_counter_intact(self):
        """A scoring failure must not advance samples_seen: the counter
        drives the phase machine, and a corrupted counter used to flip
        detectors back into 'training' on the next row."""
        net = _kitnet()
        net.process_batch(_stream(500, 24))
        before = net.samples_seen
        with pytest.raises(ValueError, match="dimension"):
            net.execute_batch(np.ones((4, 7)))
        assert net.samples_seen == before
        assert not net.in_training  # phase state unharmed

    def test_process_batch_bad_dim_before_any_state_change(self):
        net = _kitnet()
        with pytest.raises(ValueError, match="dimension"):
            net.process_batch(np.ones((4, 7)))
        assert net.samples_seen == 0
