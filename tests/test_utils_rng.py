"""Tests for the deterministic hierarchical RNG."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeededRNG, derive_seed, spawn_child


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            derive_seed("42", "a")  # type: ignore[arg-type]

    @given(st.integers(), st.text(max_size=40))
    def test_always_in_64bit_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**64


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a = SeededRNG(7).random(10)
        b = SeededRNG(7).random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = SeededRNG(7).random(10)
        b = SeededRNG(8).random(10)
        assert not np.array_equal(a, b)

    def test_children_are_independent_of_consumption_order(self):
        parent1 = SeededRNG(3)
        parent1.random(100)  # consume from the parent stream
        child1 = parent1.child("x")

        parent2 = SeededRNG(3)
        child2 = parent2.child("x")

        np.testing.assert_array_equal(child1.random(5), child2.random(5))

    def test_distinct_children(self):
        parent = SeededRNG(3)
        assert not np.array_equal(
            parent.child("a").random(5), parent.child("b").random(5)
        )

    def test_child_label_nests(self):
        child = SeededRNG(3, "root").child("sub")
        assert child.label == "root/sub"

    def test_spawn_child_from_int(self):
        a = spawn_child(9, "x").random(3)
        b = SeededRNG(9).child("x").random(3)
        np.testing.assert_array_equal(a, b)

    def test_negative_seed_wraps(self):
        rng = SeededRNG(-1)
        assert rng.seed == (1 << 64) - 1

    def test_passthrough_methods(self, ):
        rng = SeededRNG(11)
        assert rng.integers(0, 10) in range(10)
        assert 0.0 <= rng.uniform(0, 1) <= 1.0
        assert rng.exponential(1.0) >= 0.0
        assert rng.poisson(3.0) >= 0
        assert rng.geometric(0.5) >= 1
        values = rng.permutation(5)
        assert sorted(values.tolist()) == [0, 1, 2, 3, 4]
        choice = rng.choice([1, 2, 3])
        assert choice in (1, 2, 3)
