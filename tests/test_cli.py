"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.which == "all"

    def test_evaluate_rejects_unknown_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "Zeek", "Mirai"])


class TestCommands:
    def test_tables_prints_inventories(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Kitsune" in out
        assert "KDD-Cup99" in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" not in out

    def test_generate_with_pcap(self, capsys, tmp_path):
        path = tmp_path / "out.pcap"
        assert main(["generate", "Mirai", "--scale", "0.05",
                     "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Mirai" in out
        assert path.exists()

    def test_generate_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["generate", "NoSuchSet"])

    def test_evaluate_cell(self, capsys):
        assert main(["evaluate", "Slips", "Mirai", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "threshold" in out

    def test_evaluate_unknown_dataset_errors(self, capsys):
        assert main(["evaluate", "Slips", "NoSuchSet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_table4_restricted(self, capsys):
        assert main(["table4", "--scale", "0.05", "--ids", "Slips",
                     "--datasets", "Mirai"]) == 0
        out = capsys.readouterr().out
        assert "IDS: Slips" in out
        assert "Average:" in out
