"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.which == "all"

    def test_evaluate_rejects_unknown_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "Zeek", "Mirai"])

    def test_table4_sweep_defaults(self):
        args = build_parser().parse_args(["table4-sweep"])
        assert args.seeds == 3
        assert args.seed == 0
        assert args.jobs == 1
        assert args.cache_max_mb is None

    def test_table4_sweep_rejects_zero_seeds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4-sweep", "--seeds", "0"])

    def test_cache_gc_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "gc"])

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.engine == "vector"
        assert args.dataset == "Mirai"
        assert not args.no_compare

    def test_profile_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--engine", "cuda"])


class TestCommands:
    def test_tables_prints_inventories(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Kitsune" in out
        assert "KDD-Cup99" in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" not in out

    def test_generate_with_pcap(self, capsys, tmp_path):
        path = tmp_path / "out.pcap"
        assert main(["generate", "Mirai", "--scale", "0.05",
                     "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Mirai" in out
        assert path.exists()

    def test_generate_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["generate", "NoSuchSet"])

    def test_evaluate_cell(self, capsys):
        assert main(["evaluate", "Slips", "Mirai", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "threshold" in out

    def test_evaluate_unknown_dataset_errors(self, capsys):
        assert main(["evaluate", "Slips", "NoSuchSet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_packet_path(self, capsys, tmp_path):
        report = tmp_path / "profile.json"
        assert main(["profile", "--dataset", "mirai", "--scale", "0.03",
                     "--packets", "300", "--json", str(report)]) == 0
        out = capsys.readouterr().out
        for stage in ("ingest", "netstat", "kitnet-train",
                      "kitnet-train-batched", "kitnet", "kitnet-batch",
                      "total"):
            assert stage in out
        import json

        payload = json.loads(report.read_text())
        assert payload["packets"] == 300
        assert payload["engine"] == "vector"
        assert [s["stage"] for s in payload["stages"]] == [
            "ingest", "netstat", "kitnet-train", "kitnet-train-batched",
            "kitnet", "kitnet-batch"
        ]
        assert payload["ingest_backend"] == "packet-objects"
        assert all(s["seconds"] >= 0 for s in payload["stages"])
        # The default engine is compared against the scalar reference.
        assert payload["netstat_speedup"] is not None
        # The batched execute stage is parity-checked while it is timed.
        assert payload["kitnet_batch_parity"] is True
        assert payload["kitnet_batch_speedup"] > 0
        # The default training stage is mini-batch: timed, no parity
        # claim (intentionally different trajectory).
        assert payload["train_mode"] == "minibatch"
        assert payload["kitnet_train_speedup"] > 0
        assert payload["kitnet_train_parity"] is None

    def test_profile_parallel_training_stage(self, capsys, tmp_path):
        report = tmp_path / "profile.json"
        assert main(["profile", "--dataset", "mirai", "--scale", "0.03",
                     "--packets", "300", "--train-workers", "2",
                     "--no-compare", "--json", str(report)]) == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["train_mode"] == "parallel-online"
        assert payload["train_workers"] == 2
        # Parallel online training is parity-gated while it is timed.
        assert payload["kitnet_train_parity"] is True
        assert "bit-identical" in capsys.readouterr().out

    def test_profile_scalar_engine_skips_comparison(self, capsys):
        assert main(["profile", "--dataset", "mirai", "--scale", "0.03",
                     "--packets", "200", "--engine", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "netstat engine speedup" not in out

    def test_profile_unknown_dataset_errors(self, capsys):
        assert main(["profile", "--dataset", "NoSuchSet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_table4_restricted(self, capsys):
        assert main(["table4", "--scale", "0.05", "--ids", "Slips",
                     "--datasets", "Mirai"]) == 0
        out = capsys.readouterr().out
        assert "IDS: Slips" in out
        assert "Average:" in out

    def test_table4_sweep_renders_std_columns(self, capsys, tmp_path):
        argv = ["table4-sweep", "--seeds", "2", "--scale", "0.05",
                "--ids", "Slips", "--datasets", "Mirai",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "IDS: Slips" in out
        assert "±" in out
        assert "Average:" in out
        # Warm rerun: every cell is a whole-cell cache hit.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 whole-cell" in out

    def test_evaluate_single_seed_honours_cache_dir(self, capsys, tmp_path):
        argv = ["evaluate", "Slips", "Mirai", "--scale", "0.05",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "results").exists()  # cell was stored
        assert main(argv) == 0  # warm: served from the result cache
        assert capsys.readouterr().out == first

    def test_evaluate_multi_seed(self, capsys):
        assert main(["evaluate", "Slips", "Mirai", "--scale", "0.05",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "seed 0:" in out
        assert "seed 1:" in out
        assert "±" in out

    def test_cache_stats_and_gc(self, capsys, tmp_path):
        assert main(["table4-sweep", "--seeds", "2", "--scale", "0.05",
                     "--ids", "Slips", "--datasets", "Mirai",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "datasets" in out and "total" in out
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-mb", "0", "--datasets-max-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "results: removed" in out
        assert "datasets: removed" in out

    def test_cache_gc_without_budget_errors(self, capsys, tmp_path):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
        assert "max-mb" in capsys.readouterr().err
