"""Crash-resume, backpressure and slow-worker behaviour under faults.

The central claim: a worker SIGKILLed mid-run resumes from its last
checkpoint and the merged run is *bit-identical* to an uninterrupted
one — same scores, same windows, same alert episodes. Two kill points
cover both resume paths: before any periodic checkpoint exists (the
genesis checkpoint carries the freshly-warmed detector, so the worker
replays its shard from packet zero) and between periodic checkpoints
(restore mid-stream state, replay only the retained tail).

Tolerance note: these parity assertions use the channel-keyed harness
detector, for which sharding — and therefore crash-resume at any
worker count — is exactly score-preserving. For the NetStat IDSs the
same crash-resume machinery is bit-exact *at a fixed worker count*
(verified here with Kitsune), while scores across *different* worker
counts follow the documented sharding tolerance (see
``docs/STREAMING.md``): coverage is always exact, Channel/Socket
features are always exact, source-keyed features may differ when a
source spans shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.detector import build_streaming_detector
from repro.stream.service import stream_capture
from repro.stream.sharded import stream_capture_sharded
from repro.stream.sources import DatasetSource, ListSource

from tests.faultinject import (
    ChannelMeanDetector,
    FaultInjection,
    assert_stream_reports_match,
    conversation_packets,
    run_sharded,
)

WORKERS = 3
CHECKPOINT_EVERY = 50


def _faulted_vs_clean(fault, **kwargs):
    packets = conversation_packets()
    clean = run_sharded(packets, workers=WORKERS,
                        checkpoint_every=CHECKPOINT_EVERY, **kwargs)
    hurt = run_sharded(packets, workers=WORKERS, fault=fault,
                       checkpoint_every=CHECKPOINT_EVERY, **kwargs)
    return clean, hurt


class TestKillResume:
    def test_kill_before_first_checkpoint_resumes_from_genesis(self):
        # "Mid-grace": the worker dies before it ever checkpointed, so
        # resume falls back to the genesis snapshot (the warmed
        # detector at shard packet zero) and replays everything.
        fault = FaultInjection(worker=1,
                               at_packets=CHECKPOINT_EVERY // 2,
                               action="kill")
        clean, hurt = _faulted_vs_clean(fault)
        assert hurt.notes["workers"][1]["restarts"] == 1
        assert_stream_reports_match(hurt, clean)

    def test_kill_between_checkpoints_resumes_mid_stream(self):
        # "Mid-execute": at least one periodic checkpoint exists; the
        # worker restores mid-stream state and replays only the tail.
        fault = FaultInjection(worker=1,
                               at_packets=CHECKPOINT_EVERY + 20,
                               action="kill")
        clean, hurt = _faulted_vs_clean(fault)
        assert hurt.notes["workers"][1]["restarts"] == 1
        assert_stream_reports_match(hurt, clean)

    def test_killed_run_matches_uninterrupted_single_process_run(self):
        # The acceptance check end to end: kill a worker, resume from
        # checkpoint, and the merged report — alert episodes included —
        # matches the uninterrupted *single-process* run.
        packets = conversation_packets()
        single = stream_capture(
            ListSource(packets), ChannelMeanDetector(),
            warmup_packets=64, window_seconds=5.0,
        )
        fault = FaultInjection(worker=1,
                               at_packets=CHECKPOINT_EVERY + 7,
                               action="kill")
        hurt = run_sharded(packets, workers=WORKERS, fault=fault,
                           checkpoint_every=CHECKPOINT_EVERY)
        assert hurt.notes["workers"][1]["restarts"] == 1
        assert np.array_equal(single.scores, hurt.scores)
        assert single.threshold == hurt.threshold
        assert single.alerts == hurt.alerts

    def test_kill_resume_is_bit_exact_for_kitsune(self):
        # Same machinery under a real IDS: crash-resume at a fixed
        # worker count reproduces the uninterrupted sharded run's
        # scores exactly (full detector state rides the checkpoint).
        def run(fault=None):
            return stream_capture_sharded(
                DatasetSource("Mirai", seed=0, scale=0.02),
                build_streaming_detector("kitsune", seed=0,
                                         batch_size=64,
                                         warmup_packets=400),
                workers=2, warmup_packets=400, window_seconds=5.0,
                checkpoint_every=40, chunk_packets=32, fault=fault,
            )

        clean = run()
        hurt = run(FaultInjection(worker=1, at_packets=60,
                                  action="kill"))
        assert hurt.notes["workers"][1]["restarts"] == 1
        assert np.array_equal(clean.scores, hurt.scores)
        assert clean.alerts == hurt.alerts
        assert (clean.notes["merged_score_digest"]
                == hurt.notes["merged_score_digest"])

    def test_repeated_crashes_exhaust_max_restarts(self):
        fault = FaultInjection(worker=1, at_packets=10, action="kill",
                               repeat_after_restart=True)
        with pytest.raises(RuntimeError, match="max_restarts"):
            run_sharded(conversation_packets(), workers=WORKERS,
                        fault=fault, max_restarts=2)


class TestStallAndSlow:
    def test_stalled_worker_applies_backpressure_not_data_loss(self):
        # A 0.5 s stall with small bounded queues: the supervisor must
        # block (send_stalls climbs) rather than buffer unboundedly,
        # and the run still finishes with identical output.
        fault = FaultInjection(worker=1, at_packets=20, action="stall",
                               seconds=0.5)
        clean, hurt = _faulted_vs_clean(fault, chunk_packets=4,
                                        queue_chunks=2)
        assert hurt.notes["send_stalls"] > 0
        assert_stream_reports_match(hurt, clean)

    def test_slow_worker_still_produces_identical_output(self):
        fault = FaultInjection(worker=1, at_packets=20, action="slow",
                               per_packet_delay=0.002)
        clean, hurt = _faulted_vs_clean(fault)
        assert_stream_reports_match(hurt, clean)
