"""Tests for the RFC 1071 checksum."""

from hypothesis import given, strategies as st

from repro.net.checksum import ones_complement_checksum


class TestChecksum:
    def test_all_zeros(self):
        assert ones_complement_checksum(b"\x00\x00") == 0xFFFF

    def test_all_ones(self):
        assert ones_complement_checksum(b"\xff\xff") == 0x0000

    def test_rfc1071_example(self):
        # RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
        # checksum is its complement 0x220d.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        # Trailing byte is padded with zero on the right.
        assert ones_complement_checksum(b"\x12") == ones_complement_checksum(
            b"\x12\x00"
        )

    @given(st.binary(min_size=0, max_size=256))
    def test_range(self, data):
        value = ones_complement_checksum(data)
        assert 0 <= value <= 0xFFFF

    @given(st.binary(min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0))
    def test_verification_property(self, data):
        """Inserting the checksum makes the whole block sum to zero."""
        checksum = ones_complement_checksum(data)
        block = data + bytes([checksum >> 8, checksum & 0xFF])
        assert ones_complement_checksum(block) == 0
