"""Tests for the stream database and the 100-dim NetStat vector."""

import numpy as np
import pytest

from repro.features.afterimage import DEFAULT_DECAYS, IncStatDB
from repro.features.netstat import KITSUNE_FEATURE_COUNT, NetStat

from tests.conftest import make_tcp_packet, make_udp_packet


class TestIncStatDB:
    def test_1d_output_size(self):
        db = IncStatDB()
        out = db.update_get_1d("k", 100.0, 0.0)
        assert len(out) == 3 * len(DEFAULT_DECAYS)

    def test_2d_output_size(self):
        db = IncStatDB()
        out = db.update_get_2d("a>b", "b>a", 100.0, 0.0)
        assert len(out) == 7 * len(DEFAULT_DECAYS)

    def test_stream_reuse(self):
        db = IncStatDB()
        db.update_get_1d("k", 100.0, 0.0)
        db.update_get_1d("k", 100.0, 0.0)
        assert len(db) == 1

    def test_rejects_empty_decays(self):
        with pytest.raises(ValueError):
            IncStatDB(())

    def test_pruning_bounds_memory(self):
        db = IncStatDB(max_streams=10)
        for i in range(50):
            db.update_get_1d(f"k{i}", 1.0, float(i))
        assert len(db) <= 30  # pruning halves when the bound is crossed


class TestNetStat:
    def test_feature_count(self):
        assert NetStat().feature_count == KITSUNE_FEATURE_COUNT == 100

    def test_vector_shape_and_finiteness(self):
        ns = NetStat()
        vec = ns.update(make_tcp_packet(0.0))
        assert vec.shape == (100,)
        assert np.isfinite(vec).all()

    def test_extract_all_shape(self):
        ns = NetStat()
        packets = [make_tcp_packet(float(i) * 0.1) for i in range(20)]
        matrix = ns.extract_all(packets)
        assert matrix.shape == (20, 100)

    def test_extract_all_empty(self):
        assert NetStat().extract_all([]).shape == (0, 100)

    def test_weight_grows_with_repeated_traffic(self):
        ns = NetStat()
        first = ns.update(make_tcp_packet(0.0))
        later = None
        for i in range(1, 10):
            later = ns.update(make_tcp_packet(float(i) * 0.001))
        # Feature 0 is the slowest-decay MAC-IP stream weight.
        assert later is not None
        assert later[0] > first[0]

    def test_distinct_sources_distinct_streams(self):
        ns = NetStat()
        ns.update(make_tcp_packet(0.0, src="10.0.0.1"))
        vec = ns.update(make_tcp_packet(0.001, src="99.0.0.1"))
        # A brand-new source starts with weight 1 in its own stream.
        assert vec[0] == pytest.approx(1.0)

    def test_reduced_decay_set(self):
        ns = NetStat(decays=(1.0, 0.1))
        vec = ns.update(make_udp_packet(0.0))
        assert vec.shape == (40,)

    def test_flood_inflates_channel_weight(self):
        ns = NetStat()
        for i in range(50):
            ns.update(make_udp_packet(float(i) * 0.001, sport=5000))
        burst = ns.update(make_udp_packet(0.051, sport=5000))
        fresh = NetStat().update(make_udp_packet(0.0, sport=5000))
        # Channel block: indices 30..64; its weight entries reflect the
        # sustained flood.
        assert burst[30] > fresh[30]
