"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.traffic import Host, Network
from repro.net.ethernet import EthernetHeader
from repro.net.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader
from repro.utils.rng import SeededRNG


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Every test starts with a fresh, disabled obs registry.

    Engine/stream code records some metrics unconditionally, so without
    this a test's counters would leak into the next test's snapshots.
    """
    from repro import obs

    obs.disable()
    obs.reset_registry()
    yield
    obs.disable()
    obs.reset_registry()


def _available_feature_backends() -> list[str]:
    """Feature-engine backends whose probes pass on this host.

    Evaluated at collection time so the parity-contract fixtures below
    parameterize over exactly the backends a user could select here —
    native variants appear only when a C compiler is available.
    """
    from repro import backends

    return [
        spec.name
        for spec in backends.available_backends(backends.FEATURE_ENGINE)
    ]


@pytest.fixture(params=_available_feature_backends())
def feature_backend(request) -> str:
    """Shared parity contract: every registered, available feature
    backend. A test taking this fixture runs once per backend and must
    hold bit-for-bit against the scalar reference."""
    return request.param


@pytest.fixture(params=["per-row", "batched-einsum"])
def ensemble_backend(request) -> str:
    """Shared parity contract over the registered ensemble backends."""
    return request.param


@pytest.fixture
def rng() -> SeededRNG:
    return SeededRNG(12345, "test")


@pytest.fixture
def network(rng) -> Network:
    return Network(subnet="192.168", rng=rng.child("net"))


def make_tcp_packet(
    ts: float = 0.0,
    src: str = "10.0.0.1",
    dst: str = "10.0.0.2",
    sport: int = 1234,
    dport: int = 80,
    flags: TCPFlags = TCPFlags.ACK,
    payload: bytes = b"",
    label: int = 0,
    attack_type: str = "",
) -> Packet:
    """A fully-layered TCP packet for tests."""
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(),
        ip=IPv4Header(src_ip=src, dst_ip=dst, protocol=PROTO_TCP),
        transport=TCPHeader(src_port=sport, dst_port=dport, flags=flags),
        payload=payload,
        label=label,
        attack_type=attack_type,
    )


def make_udp_packet(
    ts: float = 0.0,
    src: str = "10.0.0.1",
    dst: str = "10.0.0.2",
    sport: int = 1234,
    dport: int = 53,
    payload: bytes = b"",
    label: int = 0,
) -> Packet:
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(),
        ip=IPv4Header(src_ip=src, dst_ip=dst, protocol=PROTO_UDP),
        transport=UDPHeader(src_port=sport, dst_port=dport),
        payload=payload,
        label=label,
    )


def simple_http_flow_packets(start: float = 0.0) -> list[Packet]:
    """A 5-packet TCP conversation ending in FIN."""
    return [
        make_tcp_packet(start + 0.00, flags=TCPFlags.SYN),
        make_tcp_packet(start + 0.01, src="10.0.0.2", dst="10.0.0.1",
                        sport=80, dport=1234,
                        flags=TCPFlags.SYN | TCPFlags.ACK),
        make_tcp_packet(start + 0.02, flags=TCPFlags.ACK | TCPFlags.PSH,
                        payload=b"GET / HTTP/1.1\r\n\r\n"),
        make_tcp_packet(start + 0.05, src="10.0.0.2", dst="10.0.0.1",
                        sport=80, dport=1234, flags=TCPFlags.ACK,
                        payload=b"x" * 512),
        make_tcp_packet(start + 0.06, flags=TCPFlags.FIN | TCPFlags.ACK),
    ]
