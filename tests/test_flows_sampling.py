"""Tests for random flow sampling and temporal re-sorting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flows.key import flow_key_for_packet
from repro.flows.sampling import (
    random_flow_sample,
    random_packet_sample,
    sort_by_timestamp,
)
from repro.utils.rng import SeededRNG

from tests.conftest import make_udp_packet


def _population(flow_count=10, packets_per_flow=6):
    packets = []
    for f in range(flow_count):
        for i in range(packets_per_flow):
            packets.append(
                make_udp_packet(ts=f + i * 0.01, sport=4000 + f)
            )
    return sort_by_timestamp(packets)


class TestSortByTimestamp:
    def test_sorts(self):
        packets = [make_udp_packet(2.0), make_udp_packet(1.0)]
        out = sort_by_timestamp(packets)
        assert [p.timestamp for p in out] == [1.0, 2.0]

    def test_stable_for_equal_stamps(self):
        a = make_udp_packet(1.0, sport=1)
        b = make_udp_packet(1.0, sport=2)
        out = sort_by_timestamp([a, b])
        assert out == [a, b]


class TestFlowSampling:
    def test_full_fraction_keeps_everything(self):
        packets = _population()
        out = random_flow_sample(packets, 1.0, SeededRNG(1))
        assert len(out) == len(packets)

    def test_flow_integrity(self):
        """A kept flow keeps every one of its packets."""
        packets = _population()
        out = random_flow_sample(packets, 0.5, SeededRNG(2))
        kept_keys = {flow_key_for_packet(p) for p in out}
        for key in kept_keys:
            original = [p for p in packets if flow_key_for_packet(p) == key]
            sampled = [p for p in out if flow_key_for_packet(p) == key]
            assert len(original) == len(sampled)

    def test_fraction_respected_at_flow_level(self):
        packets = _population(flow_count=20)
        out = random_flow_sample(packets, 0.5, SeededRNG(3))
        kept_flows = {flow_key_for_packet(p) for p in out}
        assert len(kept_flows) == 10

    def test_zero_fraction(self):
        assert random_flow_sample(_population(), 0.0, SeededRNG(4)) == []

    def test_deterministic(self):
        packets = _population()
        a = random_flow_sample(packets, 0.3, SeededRNG(5))
        b = random_flow_sample(packets, 0.3, SeededRNG(5))
        assert a == b

    def test_output_sorted(self):
        out = random_flow_sample(_population(), 0.7, SeededRNG(6))
        stamps = [p.timestamp for p in out]
        assert stamps == sorted(stamps)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_flow_sample(_population(), 1.5, SeededRNG(7))

    @settings(max_examples=25)
    @given(st.floats(0.05, 1.0), st.integers(0, 1000))
    def test_sampled_is_subset_property(self, fraction, seed):
        packets = _population(flow_count=8)
        out = random_flow_sample(packets, fraction, SeededRNG(seed))
        assert len(out) <= len(packets)
        original_ids = {id(p) for p in packets}
        assert all(id(p) in original_ids for p in out)


class TestPacketSampling:
    def test_fraction_respected(self):
        packets = _population()
        out = random_packet_sample(packets, 0.5, SeededRNG(8))
        assert len(out) == len(packets) // 2

    def test_destroys_flow_integrity_usually(self):
        packets = _population(flow_count=10, packets_per_flow=10)
        out = random_packet_sample(packets, 0.3, SeededRNG(9))
        by_flow: dict = {}
        for p in out:
            by_flow.setdefault(flow_key_for_packet(p), []).append(p)
        # At least one flow is partially sampled (the point of the
        # contrast with flow sampling).
        assert any(len(v) < 10 for v in by_flow.values())

    def test_minimum_one_packet(self):
        packets = _population(flow_count=1, packets_per_flow=3)
        out = random_packet_sample(packets, 0.01, SeededRNG(10))
        assert len(out) == 1
